package schedule_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/schedule"
)

// blockingBackend parks every Run until released, so a test can hold jobs
// in flight on a shard child while probing admission.
type blockingBackend struct {
	inner   schedule.Backend
	started chan struct{} // one send per Run entry
	release chan struct{} // closed to let Runs proceed
}

func (b *blockingBackend) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: "blocking"}
}

func (b *blockingBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.inner.Run(ctx, jobs, opt)
}

func (b *blockingBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

func TestShardAdmitShedsWhenQueuesDeep(t *testing.T) {
	child := &blockingBackend{
		inner:   schedule.Local{},
		started: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	shard, err := schedule.NewShardWith(schedule.ShardOptions{MaxQueueDepth: 4}, child)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.Admit(1); err != nil {
		t.Fatalf("idle shard must admit: %v", err)
	}
	jobs := gridJobs(t)
	done := make(chan error, 1)
	go func() {
		_, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
		done <- err
	}()
	<-child.started // the chunk is in flight and holds ≥ MaxQueueDepth jobs
	err = shard.Admit(1)
	var oe *schedule.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want OverloadError while the queue is deep, got %v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("OverloadError must advertise a retry delay: %+v", oe)
	}
	if c := shard.Counters(); c.LoadSheds != 1 {
		t.Fatalf("LoadSheds = %d, want 1", c.LoadSheds)
	}
	close(child.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := shard.Admit(1); err != nil {
		t.Fatalf("drained shard must admit again: %v", err)
	}
}

func TestShardAdmitRejectsWhenAllQuarantined(t *testing.T) {
	failing := &flakyBackend{inner: schedule.Local{}}
	failing.failN.Store(1 << 30) // never recovers
	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		MaxQueueDepth:  4,
		QuarantineBase: time.Hour, // stays benched for the whole test
	}, failing)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gridJobs(t)
	if _, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{}); err == nil {
		t.Fatal("run over an always-failing child must fail")
	}
	var oe *schedule.OverloadError
	if err := shard.Admit(1); !errors.As(err, &oe) {
		t.Fatalf("fully quarantined shard must shed, got %v", err)
	}
}

func TestShardAdmitDisabledByDefault(t *testing.T) {
	child := &blockingBackend{
		inner:   schedule.Local{},
		started: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	close(child.release)
	shard, err := schedule.NewShard(child)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.Admit(1 << 20); err != nil {
		t.Fatalf("MaxQueueDepth unset must admit everything: %v", err)
	}
}

func TestCachedAdmitDelegates(t *testing.T) {
	child := &blockingBackend{
		inner:   schedule.Local{},
		started: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	shard, err := schedule.NewShardWith(schedule.ShardOptions{MaxQueueDepth: 2}, child)
	if err != nil {
		t.Fatal(err)
	}
	cached := schedule.NewCached(shard, nil)
	if err := cached.Admit(1); err != nil {
		t.Fatalf("idle inner shard must admit through the cache: %v", err)
	}
	jobs := gridJobs(t)
	done := make(chan error, 1)
	go func() {
		_, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{})
		done <- err
	}()
	<-child.started
	var oe *schedule.OverloadError
	if err := cached.Admit(1); !errors.As(err, &oe) {
		t.Fatalf("cache must surface the inner shard's shed, got %v", err)
	}
	close(child.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// A cache over a backend without admission control admits everything.
	if err := schedule.NewCached(schedule.Local{}, nil).Admit(1 << 20); err != nil {
		t.Fatalf("cache over Local must admit: %v", err)
	}
}
