package schedule

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary row wire form is the allocation-free sibling of the JSON row:
//
//	string fields (instance, algorithm, kind) as uvarint length + bytes
//	budget, memory, io, writes as zigzag varints
//	seconds as 8 little-endian bytes of math.Float64bits
//
// in exactly the JSON/CSV column order. Seconds travels as raw bits, so the
// codec is exact for every float64 (including values JSON cannot carry).
// A framed row stream prefixes each encoded row with its uvarint length
// behind a three-byte header, so sinks and stores can append rows without
// any per-row marshalling state and readers can detect truncation.

// WireMagic is the first byte of every binary schedule stream (row streams,
// row stores, service request/response bodies). It is non-ASCII so binary
// payloads can never be confused with CSV, JSON or textual .tree documents.
const WireMagic = 0xAB

// RowStreamVersion is the current (and only) framed row stream version.
const RowStreamVersion = 1

// rowStreamKind is the stream-type byte of a framed row stream ('R' for
// rows; the row store and the service transport use sibling kind bytes).
const rowStreamKind = 'R'

// AppendRow serializes r in the binary row wire form, appending to dst
// (pass nil to allocate), and returns the extended slice.
func AppendRow(dst []byte, r Row) []byte {
	dst = appendString(dst, r.Instance)
	dst = appendString(dst, r.Algorithm)
	dst = appendString(dst, r.Kind)
	dst = binary.AppendVarint(dst, r.Budget)
	dst = binary.AppendVarint(dst, r.Memory)
	dst = binary.AppendVarint(dst, r.IO)
	dst = binary.AppendVarint(dst, int64(r.Writes))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Seconds))
}

// DecodeRow parses one binary row from the front of data and returns the
// row plus the remaining bytes. It is the inverse of AppendRow and exact:
// decode(encode(r)) == r for every row, bit for bit.
func DecodeRow(data []byte) (Row, []byte, error) {
	var d rowDecoder
	return d.decode(data)
}

// rowDecoder decodes binary rows, optionally interning the string fields so
// a long stream of rows shares one string per distinct instance, algorithm
// and kind instead of allocating each copy.
type rowDecoder struct {
	intern map[string]string
}

func (d *rowDecoder) str(b []byte) string {
	if d.intern == nil {
		return string(b)
	}
	if s, ok := d.intern[string(b)]; ok { // no alloc: mapaccess on []byte key
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}

func (d *rowDecoder) decode(data []byte) (Row, []byte, error) {
	var (
		r   Row
		err error
	)
	fail := func(field string) (Row, []byte, error) {
		return Row{}, nil, fmt.Errorf("schedule: binary row has a malformed %s", field)
	}
	var b []byte
	if b, data, err = decodeBytes(data); err != nil {
		return fail("instance")
	}
	r.Instance = d.str(b)
	if b, data, err = decodeBytes(data); err != nil {
		return fail("algorithm")
	}
	r.Algorithm = d.str(b)
	if b, data, err = decodeBytes(data); err != nil {
		return fail("kind")
	}
	r.Kind = d.str(b)
	if r.Budget, data, err = decodeVarint(data); err != nil {
		return fail("budget")
	}
	if r.Memory, data, err = decodeVarint(data); err != nil {
		return fail("memory")
	}
	if r.IO, data, err = decodeVarint(data); err != nil {
		return fail("io")
	}
	var w int64
	if w, data, err = decodeVarint(data); err != nil {
		return fail("writes")
	}
	r.Writes = int(w)
	if len(data) < 8 {
		return fail("seconds")
	}
	r.Seconds = math.Float64frombits(binary.LittleEndian.Uint64(data))
	return r, data[8:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeBytes reads a uvarint-length-prefixed byte field without copying.
func decodeBytes(data []byte) ([]byte, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("malformed length")
	}
	data = data[n:]
	if v > uint64(len(data)) {
		return nil, nil, fmt.Errorf("length %d exceeds %d remaining bytes", v, len(data))
	}
	return data[:v], data[v:], nil
}

func decodeVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("malformed varint")
	}
	return v, data[n:], nil
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("malformed uvarint")
	}
	return v, data[n:], nil
}

// BinaryRowSink is a RowSink streaming rows in the framed binary wire form
// (the binary sibling of CSVSink/JSONLSink): a three-byte header, then one
// uvarint-length-prefixed AppendRow frame per row. The encoding scratch and
// the write buffer are reused across pushes, so a steady-state row costs no
// allocations. Flush must be called once the stream completes.
type BinaryRowSink struct {
	bw      *bufio.Writer
	scratch []byte
	header  bool
}

// NewBinaryRowSink returns a sink writing framed binary rows to w.
func NewBinaryRowSink(w io.Writer) *BinaryRowSink {
	return &BinaryRowSink{bw: bufio.NewWriter(w)}
}

// Push implements RowSink.
func (s *BinaryRowSink) Push(r Row) error {
	if !s.header {
		s.header = true
		if _, err := s.bw.Write([]byte{WireMagic, rowStreamKind, RowStreamVersion}); err != nil {
			return err
		}
	}
	s.scratch = AppendRow(s.scratch[:0], r)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(s.scratch)))
	if _, err := s.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := s.bw.Write(s.scratch)
	return err
}

// Flush writes the header (for an empty stream) and flushes buffered rows.
func (s *BinaryRowSink) Flush() error {
	if !s.header {
		s.header = true
		if _, err := s.bw.Write([]byte{WireMagic, rowStreamKind, RowStreamVersion}); err != nil {
			return err
		}
	}
	return s.bw.Flush()
}

// ReadBinaryRows decodes a complete framed binary row stream, the inverse
// of streaming rows through a BinaryRowSink. String fields are interned, so
// a grid's worth of rows shares one string per distinct instance, algorithm
// and kind. A stream cut off mid-frame is an error, not a short result.
func ReadBinaryRows(r io.Reader) ([]Row, error) {
	br := bufio.NewReader(r)
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("schedule: binary row stream header: %w", err)
	}
	if hdr[0] != WireMagic || hdr[1] != rowStreamKind {
		return nil, fmt.Errorf("schedule: bad binary row stream header % X", hdr[:])
	}
	if hdr[2] != RowStreamVersion {
		return nil, fmt.Errorf("schedule: unsupported binary row stream version %d (want %d)", hdr[2], RowStreamVersion)
	}
	var (
		rows []Row
		buf  []byte
		d    = rowDecoder{intern: make(map[string]string)}
	)
	for {
		frameLen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("schedule: binary row stream truncated mid-frame: %w", err)
		}
		if frameLen > uint64(maxRowFrame) {
			return nil, fmt.Errorf("schedule: binary row frame of %d bytes exceeds the %d-byte limit", frameLen, maxRowFrame)
		}
		if uint64(cap(buf)) < frameLen {
			buf = make([]byte, frameLen)
		}
		buf = buf[:frameLen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("schedule: binary row stream truncated mid-frame: %w", err)
		}
		row, rest, err := d.decode(buf)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("schedule: binary row frame has %d trailing bytes", len(rest))
		}
		rows = append(rows, row)
	}
}

// maxRowFrame bounds a single row frame; a longer length prefix means
// corruption, not a legitimate row.
const maxRowFrame = 1 << 20
