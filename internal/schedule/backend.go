package schedule

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/runner"
)

// Capabilities is the metadata a backend reports about itself, used by
// callers to pick output wording and by wiring code to sanity-check a
// configuration (e.g. refusing to nest two caches).
type Capabilities struct {
	// Name identifies the backend in logs and error messages, e.g.
	// "local", "cached(local)", "http".
	Name string
	// Remote reports that jobs leave the process: trees are serialized and
	// the work runs elsewhere, so job slices must not rely on shared memory.
	Remote bool
	// Cached reports that the backend may satisfy jobs from a store without
	// executing any algorithm.
	Cached bool
}

// Backend evaluates jobs and produces one row per job, in job order.
// Implementations must be deterministic modulo the Seconds column: given
// the same jobs, every backend returns bit-identical rows.
//
// Run is the materialized form: the batch is a slice, the rows come back as
// a slice, and the first failing job fails the batch. Stream is the same
// contract over iterators — jobs are pulled from a JobSource as capacity
// frees up and rows are pushed to a RowSink in job order — so a grid larger
// than memory can flow through with peak resident state bounded by
// StreamOptions.ChunkSize × InFlight. Either method may be the native one:
// batch-first backends get Stream via StreamChunked, stream-first backends
// (Shard) get Run via RunViaStream, mirroring how RunBatch wraps Local.
//
// Four implementations ship with the repository: Local (the in-process
// worker-pool evaluator), Cached (a content-addressed decorator over any
// backend, see NewCached), Shard (a fan-out over several child backends,
// see NewShard) and the HTTP client of internal/service speaking to a
// cmd/scheduled evaluation server.
type Backend interface {
	Capabilities() Capabilities
	Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error)
	Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error
}

// Local is the in-process backend: it evaluates every job concurrently on
// runner.ForEach against the process-wide algorithm registry. The zero
// value is ready to use.
type Local struct{}

// Capabilities implements Backend.
func (Local) Capabilities() Capabilities { return Capabilities{Name: "local"} }

// Run implements Backend. Algorithms are deterministic and jobs are
// independent, so the rows are bit-identical to a sequential run; only the
// Seconds column varies. The first failing job cancels the rest. The
// returned slice is drawn from the stream engine's row pool, so the
// streaming merge can recycle it after the sink consumes the chunk; callers
// that keep the slice simply never return it to the pool.
func (Local) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	rows := getRowSlice(len(jobs))
	var mu sync.Mutex
	err := runner.ForEach(ctx, len(jobs), opt.Workers, func(i int) error {
		row, err := runJob(jobs[i])
		if err != nil {
			return fmt.Errorf("schedule: job %s/%s: %w", jobs[i].Instance, jobs[i].Algorithm, err)
		}
		rows[i] = row
		if opt.OnRow != nil || opt.OnRowIndexed != nil {
			mu.Lock()
			if opt.OnRow != nil {
				opt.OnRow(row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(i, row)
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Stream implements Backend by chunking the source through Run: chunks
// evaluate concurrently (each with its own worker pool) and merge into the
// sink in job order.
func (l Local) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	return StreamChunked(ctx, l.Run, src, sink, opt)
}
