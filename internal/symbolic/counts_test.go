package symbolic

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sparse"
)

// TestColumnCountsMatchesNaive differentially pins the Gilbert–Ng–Peyton
// skeleton algorithm against the seed row-subtree traversal on structured
// and random patterns.
func TestColumnCountsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	check := func(name string, m *sparse.Matrix) {
		t.Helper()
		s := m.Symmetrize()
		parent, err := EliminationTree(s)
		if err != nil {
			t.Fatalf("%s: etree: %v", name, err)
		}
		got, err := ColumnCounts(s, parent)
		if err != nil {
			t.Fatalf("%s: gnp: %v", name, err)
		}
		want, err := columnCountsNaive(s, parent)
		if err != nil {
			t.Fatalf("%s: naive: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: counts diverge\n gnp  %v\n naive %v", name, got, want)
		}
	}
	g2, err := sparse.Grid2D(13, 11)
	if err != nil {
		t.Fatal(err)
	}
	check("grid2d", g2)
	g3, err := sparse.Grid3D(5, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	check("grid3d", g3)
	bm, err := sparse.BandMatrix(90, 7)
	if err != nil {
		t.Fatal(err)
	}
	check("band", bm)
	sf, err := sparse.ScaleFree(rng, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	check("scalefree", sf)
	rm, err := sparse.RMAT(rng, 130, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("rmat", rm)
	for trial := 0; trial < 30; trial++ {
		m, err := sparse.RandomSymmetric(rng, 1+rng.Intn(70), 5*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		check("random", m)
	}
}

func TestColumnCountsRejectsBadParent(t *testing.T) {
	m, err := sparse.BandMatrix(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ColumnCounts(m, []int{NoParent}); err == nil {
		t.Fatal("want error for wrong-length parent")
	}
	if _, err := ColumnCounts(m, []int{1, 0, 3, NoParent}); err == nil {
		t.Fatal("want error for parent[1] <= 1")
	}
}
