// Package symbolic implements the symbolic-factorization stage of the
// multifrontal pipeline: elimination trees (Liu's algorithm with path
// compression), column counts of the Cholesky factor L, and the relaxed
// node amalgamation that turns an elimination tree into the assembly tree
// whose traversal the paper optimizes. Node and edge weights follow
// Section VI-B exactly: a node amalgamating η columns whose top column has
// µ factor nonzeros weighs η² + 2η(µ−1), and its contribution block
// (edge to the parent) weighs (µ−1)².
package symbolic

import (
	"fmt"

	"repro/internal/sparse"
)

// NoParent marks elimination-tree roots.
const NoParent = -1

// EliminationTree computes the elimination-tree parent vector of a
// symmetric pattern with full diagonal (Liu's algorithm, using ancestor
// path compression; O(nnz·α)). Disconnected matrices yield a forest with
// several NoParent roots.
func EliminationTree(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("symbolic: elimination tree needs a symmetric pattern")
	}
	if !m.HasFullDiagonal() {
		return nil, fmt.Errorf("symbolic: elimination tree needs a full diagonal")
	}
	n := m.N()
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = NoParent
		ancestor[j] = NoParent
		for _, ir := range m.Col(j) {
			i := int(ir)
			if i >= j {
				continue // lower entries handled by symmetry
			}
			// Walk from i to the root of its current subtree, compressing
			// the ancestor path onto j.
			r := i
			for ancestor[r] != NoParent && ancestor[r] != j {
				next := ancestor[r]
				ancestor[r] = j
				r = next
			}
			if ancestor[r] == NoParent {
				ancestor[r] = j
				parent[r] = j
			}
		}
	}
	return parent, nil
}

// ColumnCounts returns the number of nonzeros of every column of the
// Cholesky factor L (diagonal included), using row-subtree traversals in
// O(|L|) time. parent must be the elimination tree of m.
func ColumnCounts(m *sparse.Matrix, parent []int) ([]int64, error) {
	n := m.N()
	if len(parent) != n {
		return nil, fmt.Errorf("symbolic: parent vector has %d entries, want %d", len(parent), n)
	}
	counts := make([]int64, n)
	for j := range counts {
		counts[j] = 1 // diagonal
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		// Row i of L has nonzeros exactly on the row subtree: the union of
		// etree paths from each a_ij (j < i) up towards i.
		for _, jr := range m.Col(i) {
			j := int(jr)
			if j >= i {
				continue
			}
			for k := j; k != NoParent && mark[k] != i; k = parent[k] {
				counts[k]++ // ℓ_ik ≠ 0
				mark[k] = i
			}
		}
	}
	return counts, nil
}

// EtreePostorder returns a postorder of the elimination forest (children
// before parents); forests are handled by visiting each root in turn.
func EtreePostorder(parent []int) []int {
	n := len(parent)
	children := make([][]int32, n)
	var roots []int32
	for j, p := range parent {
		if p == NoParent {
			roots = append(roots, int32(j))
		} else {
			children[p] = append(children[p], int32(j))
		}
	}
	out := make([]int, 0, n)
	type frame struct {
		node int32
		next int32
	}
	for _, r := range roots {
		stack := []frame{{r, 0}}
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if int(fr.next) < len(children[fr.node]) {
				c := children[fr.node][fr.next]
				fr.next++
				stack = append(stack, frame{c, 0})
				continue
			}
			out = append(out, int(fr.node))
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// FactorNNZ returns Σ column counts = |L|.
func FactorNNZ(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}
