// Package symbolic implements the symbolic-factorization stage of the
// multifrontal pipeline: elimination trees (Liu's algorithm with path
// compression), column counts of the Cholesky factor L, and the relaxed
// node amalgamation that turns an elimination tree into the assembly tree
// whose traversal the paper optimizes. Node and edge weights follow
// Section VI-B exactly: a node amalgamating η columns whose top column has
// µ factor nonzeros weighs η² + 2η(µ−1), and its contribution block
// (edge to the parent) weighs (µ−1)².
package symbolic

import (
	"fmt"

	"repro/internal/sparse"
)

// NoParent marks elimination-tree roots.
const NoParent = -1

// EliminationTree computes the elimination-tree parent vector of a
// symmetric pattern with full diagonal (Liu's algorithm, using ancestor
// path compression; O(nnz·α)). Disconnected matrices yield a forest with
// several NoParent roots.
func EliminationTree(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("symbolic: elimination tree needs a symmetric pattern")
	}
	if !m.HasFullDiagonal() {
		return nil, fmt.Errorf("symbolic: elimination tree needs a full diagonal")
	}
	n := m.N()
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = NoParent
		ancestor[j] = NoParent
		for _, ir := range m.Col(j) {
			i := int(ir)
			if i >= j {
				continue // lower entries handled by symmetry
			}
			// Walk from i to the root of its current subtree, compressing
			// the ancestor path onto j.
			r := i
			for ancestor[r] != NoParent && ancestor[r] != j {
				next := ancestor[r]
				ancestor[r] = j
				r = next
			}
			if ancestor[r] == NoParent {
				ancestor[r] = j
				parent[r] = j
			}
		}
	}
	return parent, nil
}

// ColumnCounts returns the number of nonzeros of every column of the
// Cholesky factor L (diagonal included). parent must be the elimination
// tree of m. It runs the Gilbert–Ng–Peyton skeleton algorithm in
// O(nnz·α(nnz,n)) time: a postorder pass finds each column's first
// descendant, then every entry a_ij (i > j) is classified as a skeleton
// entry — j a leaf of row i's subtree — or a duplicate via maxfirst; leaf
// overlaps are charged to the least common ancestor found by a
// path-compressed union-find, and the resulting per-column deltas are
// summed up the tree. Unlike the row-subtree traversal it replaces (kept
// as columnCountsNaive for differential tests), the cost is proportional
// to nnz(A), not to |L|.
func ColumnCounts(m *sparse.Matrix, parent []int) ([]int64, error) {
	n := m.N()
	if len(parent) != n {
		return nil, fmt.Errorf("symbolic: parent vector has %d entries, want %d", len(parent), n)
	}
	for j, p := range parent {
		if p != NoParent && (p <= j || p >= n) {
			return nil, fmt.Errorf("symbolic: parent[%d] = %d is not a valid etree parent", j, p)
		}
	}
	post := EtreePostorder(parent)
	counts := make([]int64, n)
	work := make([]int32, 4*n)
	first, maxfirst, prevleaf, ancestor := work[:n], work[n:2*n], work[2*n:3*n], work[3*n:]
	for i := int32(0); i < int32(n); i++ {
		first[i], maxfirst[i], prevleaf[i] = -1, -1, -1
		ancestor[i] = i
	}
	// First descendants: first[j] = postorder index of j's earliest leaf.
	for k, j := range post {
		if first[j] == -1 {
			counts[j] = 1 // j is a leaf of the etree
		}
		for ; j != NoParent && first[j] == -1; j = parent[j] {
			first[j] = int32(k)
		}
	}
	for _, j := range post {
		if parent[j] != NoParent {
			counts[parent[j]]--
		}
		for _, ir := range m.Col(j) {
			i := int(ir)
			if i <= j {
				continue
			}
			q, kind := skeletonLeaf(int32(i), int32(j), first, maxfirst, prevleaf, ancestor)
			if kind >= 1 {
				counts[j]++ // a_ij is a skeleton entry
			}
			if kind == 2 {
				counts[q]-- // overlap with the previous leaf of row i
			}
		}
		if parent[j] != NoParent {
			ancestor[j] = int32(parent[j])
		}
	}
	// Sum deltas up the tree; parents have larger indices, so ascending
	// order finalizes every child before its parent.
	for j := 0; j < n; j++ {
		if p := parent[j]; p != NoParent {
			counts[p] += counts[j]
		}
	}
	return counts, nil
}

// skeletonLeaf decides whether column j is a leaf of row i's subtree. kind
// is 0 if not a leaf, 1 for the first leaf of the subtree, 2 for a later
// leaf — in which case q is the least common ancestor of j and the
// previous leaf, found by path-compressed union-find.
func skeletonLeaf(i, j int32, first, maxfirst, prevleaf, ancestor []int32) (q int32, kind int) {
	if first[j] <= maxfirst[i] {
		return -1, 0 // j spans no new descendants of row i
	}
	maxfirst[i] = first[j]
	jprev := prevleaf[i]
	prevleaf[i] = j
	if jprev == -1 {
		return i, 1
	}
	for q = jprev; q != ancestor[q]; q = ancestor[q] {
	}
	for s := jprev; s != q; {
		s, ancestor[s] = ancestor[s], q
	}
	return q, 2
}

// columnCountsNaive is the seed implementation: row-subtree traversals in
// O(|L|) time, kept as the differential reference for ColumnCounts.
func columnCountsNaive(m *sparse.Matrix, parent []int) ([]int64, error) {
	n := m.N()
	if len(parent) != n {
		return nil, fmt.Errorf("symbolic: parent vector has %d entries, want %d", len(parent), n)
	}
	counts := make([]int64, n)
	for j := range counts {
		counts[j] = 1 // diagonal
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		// Row i of L has nonzeros exactly on the row subtree: the union of
		// etree paths from each a_ij (j < i) up towards i.
		for _, jr := range m.Col(i) {
			j := int(jr)
			if j >= i {
				continue
			}
			for k := j; k != NoParent && mark[k] != i; k = parent[k] {
				counts[k]++ // ℓ_ik ≠ 0
				mark[k] = i
			}
		}
	}
	return counts, nil
}

// EtreePostorder returns a postorder of the elimination forest (children
// before parents, siblings in index order); forests are handled by
// visiting each root in turn. The child lists live in one flat bucketed
// array (counting pass + prefix sums), so the whole computation is four
// fixed-size allocations regardless of tree shape.
func EtreePostorder(parent []int) []int {
	n := len(parent)
	childPtr := make([]int32, n+1)
	for _, p := range parent {
		if p != NoParent {
			childPtr[p+1]++
		}
	}
	for j := 0; j < n; j++ {
		childPtr[j+1] += childPtr[j]
	}
	child := make([]int32, childPtr[n])
	// cursor doubles as the fill cursor here and the next-child cursor in
	// the traversal below; both sweep each bucket exactly once.
	cursor := make([]int32, n)
	copy(cursor, childPtr[:n])
	for j, p := range parent {
		if p != NoParent {
			child[cursor[p]] = int32(j)
			cursor[p]++
		}
	}
	copy(cursor, childPtr[:n])
	out := make([]int, 0, n)
	stack := make([]int32, 0, 64)
	for r, p := range parent {
		if p != NoParent {
			continue
		}
		stack = append(stack, int32(r))
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			if cursor[node] < childPtr[node+1] {
				c := child[cursor[node]]
				cursor[node]++
				stack = append(stack, c)
				continue
			}
			out = append(out, int(node))
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// FactorNNZ returns Σ column counts = |L|.
func FactorNNZ(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}
