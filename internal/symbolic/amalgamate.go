package symbolic

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/tree"
)

// AssemblyNode describes one node of the assembly tree before weights are
// attached: the set of amalgamated elimination-tree columns is summarized
// by its size η and the column count µ of the top (highest) column.
type AssemblyNode struct {
	// Top is the highest elimination-tree column amalgamated in the node.
	Top int
	// Eta is η, the number of amalgamated columns.
	Eta int
	// Mu is µ, the factor-column count of Top in the starting tree.
	Mu int64
}

// AssemblyOptions controls amalgamation.
type AssemblyOptions struct {
	// Relax is the per-node budget of relaxed (non-perfect) amalgamations:
	// each assembly node may acquire at most this many elimination-tree
	// columns by absorbing its densest children beyond the perfect merges.
	// The paper uses 1, 2, 4 and 16. Zero keeps only perfect amalgamations
	// (fundamental supernode chains).
	Relax int
}

// AssemblyResult is the weighted assembly tree plus the per-node summary.
type AssemblyResult struct {
	// Tree carries the paper's weights: F(i) = (µ−1)² is the contribution
	// block passed to the parent, N(i) = η² + 2η(µ−1) the extra working
	// storage of the frontal matrix. The tree is orientation-neutral: the
	// multifrontal method processes it bottom-up; by the reversal lemma the
	// same memory figures hold top-down.
	Tree *tree.Tree
	// Nodes aligns with tree node indices.
	Nodes []AssemblyNode
	// Columns lists, for every assembly node, its member elimination-tree
	// columns in increasing order (empty for a virtual root).
	Columns [][]int
}

// AssemblyTree runs the full symbolic pipeline on a symmetric permuted
// pattern: elimination tree, column counts, perfect + relaxed amalgamation,
// and weight assignment per Section VI-B. Disconnected matrices get a
// zero-weight virtual root joining the forest.
func AssemblyTree(m *sparse.Matrix, opt AssemblyOptions) (*AssemblyResult, error) {
	parent, err := EliminationTree(m)
	if err != nil {
		return nil, err
	}
	counts, err := ColumnCounts(m, parent)
	if err != nil {
		return nil, err
	}
	return Amalgamate(parent, counts, opt)
}

// Amalgamate builds the weighted assembly tree from an elimination forest
// and its column counts.
//
// Processing columns bottom-up:
//   - perfect amalgamation always fires: an only child whose column count
//     exceeds its parent's by exactly one belongs to the same supernode;
//   - then, while the node has used fewer than Relax relaxed merges, it
//     absorbs its densest remaining child (the one with the largest µ).
func Amalgamate(parent []int, counts []int64, opt AssemblyOptions) (*AssemblyResult, error) {
	n := len(parent)
	if len(counts) != n {
		return nil, fmt.Errorf("symbolic: counts has %d entries, want %d", len(counts), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("symbolic: empty elimination tree")
	}
	if opt.Relax < 0 {
		return nil, fmt.Errorf("symbolic: negative relax %d", opt.Relax)
	}
	for j, p := range parent {
		if p != NoParent && (p < 0 || p >= n || p == j) {
			return nil, fmt.Errorf("symbolic: bad parent %d of %d", p, j)
		}
	}
	// Assembly state per representative column (the top column of a node).
	eta := make([]int32, n)
	kids := make([][]int32, n) // children assembly reps, maintained at reps
	rep := make([]int32, n)    // union-find: etree column → assembly rep
	for j := range rep {
		rep[j] = int32(j)
		eta[j] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for rep[x] != x {
			rep[x] = rep[rep[x]]
			x = rep[x]
		}
		return x
	}
	post := EtreePostorder(parent)
	etreeKids := make([][]int32, n)
	for j, p := range parent {
		if p != NoParent {
			etreeKids[p] = append(etreeKids[p], int32(j))
		}
	}
	for _, pi := range post {
		p := int32(pi)
		// Children assembly nodes of p (already final).
		for _, c := range etreeKids[p] {
			kids[p] = append(kids[p], find(c))
		}
		absorb := func(idx int) {
			c := kids[p][idx]
			rep[c] = p
			eta[p] += eta[c]
			kids[p] = append(kids[p][:idx], kids[p][idx+1:]...)
			kids[p] = append(kids[p], kids[c]...)
			kids[c] = nil
		}
		// Perfect amalgamation: the child attaches at column p itself, is
		// p's only elimination-tree child, and its top column has exactly
		// one more factor entry than column p — the two columns share the
		// below-diagonal structure (a fundamental supernode edge). Each
		// etree edge is examined once, when its upper endpoint is visited.
		if len(etreeKids[p]) == 1 && counts[etreeKids[p][0]] == counts[p]+1 {
			absorb(0)
		}
		// Relaxed amalgamation: absorb the densest children as long as the
		// number of columns acquired this way stays within the per-node
		// budget. Bounding the acquired columns (rather than the merge
		// count) prevents chains from collapsing transitively into a single
		// node as the budget is spent bottom-up.
		budget := int32(opt.Relax)
		for budget > 0 && len(kids[p]) > 0 {
			di := -1
			for i := range kids[p] {
				c := kids[p][i]
				if eta[c] > budget {
					continue
				}
				if di < 0 || counts[c] > counts[kids[p][di]] {
					di = i
				}
			}
			if di < 0 {
				break
			}
			budget -= eta[kids[p][di]]
			absorb(di)
		}
	}
	// Collect final assembly nodes.
	var reps []int32
	for j := 0; j < n; j++ {
		if find(int32(j)) == int32(j) {
			reps = append(reps, int32(j))
		}
	}
	asmIndex := make(map[int32]int, len(reps))
	for k, r := range reps {
		asmIndex[r] = k
	}
	// Parents in the assembly tree; count roots to decide on a virtual root.
	asmParent := make([]int, len(reps))
	var roots []int
	for k, r := range reps {
		p := parent[r]
		if p == NoParent {
			asmParent[k] = tree.NoParent
			roots = append(roots, k)
		} else {
			asmParent[k] = asmIndex[find(int32(p))]
		}
	}
	columns := make([][]int, len(reps))
	for j := 0; j < n; j++ {
		k := asmIndex[find(int32(j))]
		columns[k] = append(columns[k], j)
	}
	nodes := make([]AssemblyNode, len(reps))
	f := make([]int64, len(reps))
	nw := make([]int64, len(reps))
	for k, r := range reps {
		mu := counts[r]
		h := int64(eta[r])
		nodes[k] = AssemblyNode{Top: int(r), Eta: int(eta[r]), Mu: mu}
		f[k] = (mu - 1) * (mu - 1)
		nw[k] = h*h + 2*h*(mu-1)
	}
	if len(roots) > 1 {
		// Virtual zero-weight root joining the forest.
		vr := len(nodes)
		nodes = append(nodes, AssemblyNode{Top: -1})
		columns = append(columns, nil)
		f = append(f, 0)
		nw = append(nw, 0)
		for _, k := range roots {
			asmParent[k] = vr
			f[k] = 0 // each component's final result leaves the system
		}
		asmParent = append(asmParent, tree.NoParent)
	} else {
		// The root's contribution block leaves the system; it carries no
		// file to a parent.
		f[roots[0]] = 0
	}
	tr, err := tree.New(asmParent, f, nw)
	if err != nil {
		return nil, fmt.Errorf("symbolic: assembly tree construction: %w", err)
	}
	return &AssemblyResult{Tree: tr, Nodes: nodes, Columns: columns}, nil
}
