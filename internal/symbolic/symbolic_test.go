package symbolic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/tree"
)

func tridiag(t *testing.T, n int) *sparse.Matrix {
	t.Helper()
	m, err := sparse.BandMatrix(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEliminationTreeTridiagonal(t *testing.T) {
	m := tridiag(t, 6)
	parent, err := EliminationTree(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, NoParent}
	if !reflect.DeepEqual(parent, want) {
		t.Fatalf("etree = %v, want %v", parent, want)
	}
}

func TestEliminationTreeArrow(t *testing.T) {
	// Arrow pattern: column j = {j, n−1}. Every column hangs off the root.
	n := 5
	cols := make([][]int, n)
	for j := 0; j < n-1; j++ {
		cols[j] = []int{j, n - 1}
	}
	cols[n-1] = []int{0, 1, 2, 3, 4}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := EliminationTree(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 4, 4, NoParent}
	if !reflect.DeepEqual(parent, want) {
		t.Fatalf("etree = %v, want %v", parent, want)
	}
}

func TestEliminationTreeErrors(t *testing.T) {
	asym, err := sparse.New(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EliminationTree(asym); err == nil {
		t.Fatal("asymmetric accepted")
	}
	nodiag, err := sparse.New(2, [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EliminationTree(nodiag); err == nil {
		t.Fatal("missing diagonal accepted")
	}
}

func TestColumnCountsTridiagonal(t *testing.T) {
	m := tridiag(t, 5)
	parent, err := EliminationTree(m)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ColumnCounts(m, parent)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 2, 2, 2, 1} // bidiagonal L
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if FactorNNZ(counts) != 9 {
		t.Fatalf("FactorNNZ = %d, want 9", FactorNNZ(counts))
	}
	if _, err := ColumnCounts(m, parent[:2]); err == nil {
		t.Fatal("short parent accepted")
	}
}

// denseBoolCholesky is an O(n³) oracle: boolean Cholesky with fill.
func denseBoolCholesky(m *sparse.Matrix) []int64 {
	n := m.N()
	b := make([][]bool, n)
	for j := 0; j < n; j++ {
		b[j] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j) {
			b[int(i)][j] = true
			b[j][int(i)] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !b[i][k] {
				continue
			}
			for j := k + 1; j < n; j++ {
				if b[j][k] {
					b[i][j] = true
					b[j][i] = true
				}
			}
		}
	}
	counts := make([]int64, n)
	for j := 0; j < n; j++ {
		counts[j] = 1
		for i := j + 1; i < n; i++ {
			if b[i][j] {
				counts[j]++
			}
		}
	}
	return counts
}

// Property: ColumnCounts matches the dense boolean Cholesky oracle.
func TestQuickColumnCountsOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%30)
		rng := rand.New(rand.NewSource(seed))
		raw, err := sparse.RandomSymmetric(rng, n, 2)
		if err != nil {
			return false
		}
		m := raw.Symmetrize()
		parent, err := EliminationTree(m)
		if err != nil {
			return false
		}
		counts, err := ColumnCounts(m, parent)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(counts, denseBoolCholesky(m))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEtreePostorder(t *testing.T) {
	parent := []int{1, 4, 3, 4, NoParent}
	post := EtreePostorder(parent)
	if len(post) != 5 {
		t.Fatalf("postorder has %d entries", len(post))
	}
	pos := make([]int, 5)
	for k, v := range post {
		pos[v] = k
	}
	for j, p := range parent {
		if p != NoParent && pos[j] > pos[p] {
			t.Fatalf("node %d after its parent %d", j, p)
		}
	}
}

func TestAmalgamatePerfectChain(t *testing.T) {
	// Dense 4×4: etree is a chain with counts 4,3,2,1 — one supernode.
	n := 4
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			cols[j] = append(cols[j], i)
		}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssemblyTree(m, AssemblyOptions{Relax: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Len() != 1 {
		t.Fatalf("dense matrix should amalgamate to 1 node, got %d", res.Tree.Len())
	}
	nd := res.Nodes[0]
	// The top column of the supernode is the last one, whose factor column
	// holds only the diagonal: µ = 1. The frontal matrix is then
	// (η + µ − 1)² = 16 = n + f with an empty contribution block.
	if nd.Eta != 4 || nd.Mu != 1 {
		t.Fatalf("node = %+v, want η=4 µ=1", nd)
	}
	if res.Tree.N(0) != 16 || res.Tree.F(0) != 0 {
		t.Fatalf("weights f=%d n=%d, want 0, 16", res.Tree.F(0), res.Tree.N(0))
	}
}

func TestAmalgamateTridiagonalNoPerfect(t *testing.T) {
	// Tridiagonal counts are 2,2,…,2,1: parent count is not child+1 except
	// at the last column, so only the top pair merges perfectly.
	m := tridiag(t, 6)
	res, err := AssemblyTree(m, AssemblyOptions{Relax: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Len() != 5 {
		t.Fatalf("tridiagonal n=6 gives %d assembly nodes, want 5", res.Tree.Len())
	}
	// All etas sum to n.
	sum := 0
	for _, nd := range res.Nodes {
		sum += nd.Eta
	}
	if sum != 6 {
		t.Fatalf("η sum = %d, want 6", sum)
	}
}

func TestAmalgamateRelaxCoarsens(t *testing.T) {
	g, err := sparse.Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ordering.MinimumDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, relax := range []int{0, 1, 2, 4, 16} {
		res, err := AssemblyTree(pg, AssemblyOptions{Relax: relax})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tree.Len() > prev {
			t.Fatalf("relax=%d grew the tree: %d > %d", relax, res.Tree.Len(), prev)
		}
		prev = res.Tree.Len()
		sum := 0
		for _, nd := range res.Nodes {
			sum += nd.Eta
		}
		if sum != pg.N() {
			t.Fatalf("relax=%d: η sum %d != n %d", relax, sum, pg.N())
		}
		// Weight formulas hold for every node.
		for k, nd := range res.Nodes {
			h, mu := int64(nd.Eta), nd.Mu
			wantN := h*h + 2*h*(mu-1)
			if res.Tree.N(k) != wantN {
				t.Fatalf("node %d: n=%d want %d", k, res.Tree.N(k), wantN)
			}
			if k != res.Tree.Root() {
				wantF := (mu - 1) * (mu - 1)
				if res.Tree.F(k) != wantF {
					t.Fatalf("node %d: f=%d want %d", k, res.Tree.F(k), wantF)
				}
			}
		}
	}
}

func TestAmalgamateForestGetsVirtualRoot(t *testing.T) {
	// Two disconnected 1×1 blocks.
	m, err := sparse.New(2, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssemblyTree(m, AssemblyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Len() != 3 {
		t.Fatalf("forest should gain a virtual root: %d nodes", res.Tree.Len())
	}
	root := res.Tree.Root()
	if res.Tree.F(root) != 0 || res.Tree.N(root) != 0 {
		t.Fatal("virtual root must be weightless")
	}
	if res.Nodes[root].Top != -1 {
		t.Fatal("virtual root must be marked with Top=-1")
	}
}

func TestAmalgamateErrors(t *testing.T) {
	if _, err := Amalgamate([]int{NoParent}, []int64{1, 2}, AssemblyOptions{}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, err := Amalgamate(nil, nil, AssemblyOptions{}); err == nil {
		t.Fatal("empty tree accepted")
	}
	if _, err := Amalgamate([]int{NoParent}, []int64{1}, AssemblyOptions{Relax: -1}); err == nil {
		t.Fatal("negative relax accepted")
	}
	if _, err := Amalgamate([]int{5}, []int64{1}, AssemblyOptions{}); err == nil {
		t.Fatal("bad parent accepted")
	}
}

// Fill quality: MD and ND must produce far less fill than the natural
// order on a grid — this validates the whole ordering+symbolic pipeline.
func TestOrderingsReduceFill(t *testing.T) {
	g, err := sparse.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(perm []int) int64 {
		pm, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		parent, err := EliminationTree(pm)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := ColumnCounts(pm, parent)
		if err != nil {
			t.Fatal(err)
		}
		return FactorNNZ(counts)
	}
	natural := fill(ordering.Natural(g))
	md, err := ordering.MinimumDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ordering.NestedDissection(g, ordering.NestedDissectionOptions{LeafSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	fillMD, fillND := fill(md), fill(nd)
	if fillMD >= natural {
		t.Fatalf("MD fill %d not better than natural %d", fillMD, natural)
	}
	if fillND >= natural {
		t.Fatalf("ND fill %d not better than natural %d", fillND, natural)
	}
	t.Logf("fill natural=%d md=%d nd=%d", natural, fillMD, fillND)
}

// The assembly tree is a plausible workflow: positive weights, MemReq
// bounded, and usable by the traversal layer (smoke test via tree checks).
func TestQuickAssemblyTreesWellFormed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(29))}
	prop := func(seed int64, nRaw uint8, relaxRaw uint8) bool {
		n := 4 + int(nRaw%40)
		relax := int(relaxRaw % 5)
		rng := rand.New(rand.NewSource(seed))
		raw, err := sparse.RandomSymmetric(rng, n, 2.5)
		if err != nil {
			return false
		}
		m := raw.Symmetrize()
		res, err := AssemblyTree(m, AssemblyOptions{Relax: relax})
		if err != nil {
			return false
		}
		tr := res.Tree
		if tr.Len() > n+1 {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if tr.F(i) < 0 || tr.N(i) < 0 {
				return false
			}
		}
		return tr.IsTopDownOrder(tr.TopDown()) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

var _ = tree.NoParent // keep the import for documentation references
