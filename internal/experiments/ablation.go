package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/schedule"
	"repro/internal/traversal"
)

// RunMemoryComparisonParallel is RunMemoryComparison fanned out on the
// schedule batch evaluator; results are bit-identical to the sequential run
// (verified in tests) because instances are independent.
func RunMemoryComparisonParallel(ctx context.Context, insts []dataset.Instance, workers int) (MemoryComparison, error) {
	algs := []string{"postorder", "minmem"}
	jobs := schedule.MinMemoryGrid(toGridInstances(insts), algs)
	rows, err := schedule.RunBatch(ctx, jobs, schedule.BatchOptions{Workers: workers})
	if err != nil {
		return MemoryComparison{}, err
	}
	mc := MemoryComparison{}
	for i, inst := range insts {
		mc.Names = append(mc.Names, inst.Name)
		mc.PostOrder = append(mc.PostOrder, rows[i*len(algs)].Memory)
		mc.Optimal = append(mc.Optimal, rows[i*len(algs)+1].Memory)
	}
	return mc, nil
}

// AblationPostorderRule quantifies the value of Liu's child-sorting rule:
// for each instance it compares the natural postorder (stored child order)
// with the best postorder. Returns the fraction of instances where sorting
// helps and the mean natural/best memory ratio.
func AblationPostorderRule(insts []dataset.Instance) (fractionImproved, meanRatio float64) {
	nat, best := mustLookup("natural-postorder"), mustLookup("postorder")
	improved := 0
	var sum float64
	for _, inst := range insts {
		natOut, err1 := nat.Run(schedule.Request{Tree: inst.Tree})
		bestOut, err2 := best.Run(schedule.Request{Tree: inst.Tree})
		if err1 != nil || err2 != nil {
			panic(fmt.Sprintf("experiments: %s: %v %v", inst.Name, err1, err2))
		}
		if natOut.Memory > bestOut.Memory {
			improved++
		}
		sum += float64(natOut.Memory) / float64(bestOut.Memory)
	}
	n := float64(len(insts))
	return float64(improved) / n, sum / n
}

// AblationMinMemReuse quantifies the frontier reuse of Algorithm 4: the
// total number of Explore invocations with and without carrying the saved
// cut between memory lifts, summed over the suite. Both variants return
// the same optimal memory (checked). The call counting uses the traversal
// package's instrumentation directly — it is a cost probe, not a solver.
func AblationMinMemReuse(insts []dataset.Instance) (withReuse, withoutReuse int64, err error) {
	reuse, noReuse := mustLookup("minmem"), mustLookup("minmem-noreuse")
	for _, inst := range insts {
		a, err := reuse.Run(schedule.Request{Tree: inst.Tree})
		if err != nil {
			return 0, 0, err
		}
		b, err := noReuse.Run(schedule.Request{Tree: inst.Tree})
		if err != nil {
			return 0, 0, err
		}
		if a.Memory != b.Memory {
			return 0, 0, fmt.Errorf("ablation: reuse changed the result on %s (%d vs %d)", inst.Name, a.Memory, b.Memory)
		}
		withReuse += traversal.ExploreCalls(inst.Tree, true)
		withoutReuse += traversal.ExploreCalls(inst.Tree, false)
	}
	return withReuse, withoutReuse, nil
}

// AblationBestKWindow sweeps the Best-K subset window and reports the total
// I/O volume over the suite at the tightest memory (MaxMemReq), using
// MinMem traversals. Larger windows can only match or reduce each step's
// overshoot at exponentially growing search cost.
func AblationBestKWindow(insts []dataset.Instance, windows []int) (map[int]int64, error) {
	minmem, bestK := mustLookup("minmem"), mustLookup("best-k")
	out := make(map[int]int64, len(windows))
	for _, k := range windows {
		var total int64
		for _, inst := range insts {
			order, err := minmem.Run(schedule.Request{Tree: inst.Tree})
			if err != nil {
				return nil, err
			}
			sim, err := bestK.Run(schedule.Request{
				Tree:   inst.Tree,
				Order:  order.Order,
				Memory: inst.Tree.MaxMemReq(),
				Window: k,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation: %s K=%d: %w", inst.Name, k, err)
			}
			total += sim.IO
		}
		out[k] = total
	}
	return out, nil
}

// FormatAblations renders the three ablations as a report block.
func FormatAblations(insts []dataset.Instance) (string, error) {
	var b strings.Builder
	frac, ratio := AblationPostorderRule(insts)
	fmt.Fprintf(&b, "Ablation — Liu's postorder child-sorting rule\n")
	fmt.Fprintf(&b, "  natural postorder worse on %.1f%% of instances, mean natural/best ratio %.3f\n", 100*frac, ratio)
	withR, withoutR, err := AblationMinMemReuse(insts)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Ablation — MinMem frontier reuse between memory lifts\n")
	fmt.Fprintf(&b, "  Explore calls with reuse %d, without %d (%.2fx saved)\n",
		withR, withoutR, float64(withoutR)/float64(withR))
	windows := []int{1, 2, 5, 8}
	io, err := AblationBestKWindow(insts, windows)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Ablation — Best-K combination window\n")
	for _, k := range windows {
		fmt.Fprintf(&b, "  K=%d: total IO %d\n", k, io[k])
	}
	return b.String(), nil
}
