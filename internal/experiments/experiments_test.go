package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/schedule"
)

func smallSuite(t *testing.T) []dataset.Instance {
	t.Helper()
	insts, err := dataset.AssemblySuite(dataset.Small)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestMemoryComparisonAndStats(t *testing.T) {
	insts := smallSuite(t)
	mc := RunMemoryComparison(insts)
	if len(mc.PostOrder) != len(insts) {
		t.Fatalf("comparison covered %d of %d instances", len(mc.PostOrder), len(insts))
	}
	st := mc.Stats()
	if st.Cases != len(insts) {
		t.Fatalf("stats cases %d", st.Cases)
	}
	if st.MaxRatio < 1 || st.MeanRatio < 1 {
		t.Fatalf("ratios below 1: %+v", st)
	}
	// PostOrder never beats optimal.
	for i := range mc.PostOrder {
		if mc.PostOrder[i] < mc.Optimal[i] {
			t.Fatalf("%s: postorder below optimal", mc.Names[i])
		}
	}
	out := FormatStats("Table I", st)
	if !strings.Contains(out, "Non optimal") || !strings.Contains(out, "Max. PostOrder") {
		t.Fatalf("bad format:\n%s", out)
	}
	// Profiles build in both modes.
	if _, err := mc.Profile(false); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Profile(true); err != nil {
		t.Fatal(err)
	}
	// Empty stats don't divide by zero.
	empty := MemoryComparison{}.Stats()
	if empty.Cases != 0 {
		t.Fatal("empty stats")
	}
}

func TestRandomWeightComparisonWorseThanAssembly(t *testing.T) {
	insts := smallSuite(t)
	asm := RunMemoryComparison(insts).Stats()
	rnd := RunMemoryComparison(dataset.RandomWeightSuite(insts, 2)).Stats()
	// Section VI-E's headline: random weights make PostOrder non-optimal far
	// more often than assembly weights do.
	if rnd.FractionNonOpt < asm.FractionNonOpt {
		t.Fatalf("random trees less pathological (%f) than assembly trees (%f)",
			rnd.FractionNonOpt, asm.FractionNonOpt)
	}
	if rnd.FractionNonOpt == 0 {
		t.Fatal("random-weight suite produced no non-optimal postorders at all")
	}
}

func TestTimings(t *testing.T) {
	insts := smallSuite(t)[:6]
	tr := RunTimings(insts)
	for _, alg := range TimingAlgorithms {
		if len(tr.Seconds[alg]) != len(insts) {
			t.Fatalf("%s timed %d instances", alg, len(tr.Seconds[alg]))
		}
		for _, s := range tr.Seconds[alg] {
			if s < 0 {
				t.Fatalf("%s negative time", alg)
			}
		}
	}
	if _, err := tr.Profile(); err != nil {
		t.Fatal(err)
	}
	counts := tr.FastestCounts()
	total := 0
	for _, alg := range TimingAlgorithms {
		total += counts[alg]
	}
	if total < len(insts) {
		t.Fatalf("fastest counts %v cover %d < %d instances", counts, total, len(insts))
	}
}

func TestHeuristicsAndTraversalIO(t *testing.T) {
	insts := smallSuite(t)[:8]
	hr, err := RunHeuristics(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Cases) == 0 {
		t.Fatal("no heuristic cases")
	}
	for _, pol := range schedule.EvictionPolicyNames() {
		if len(hr.Volume[pol]) != len(hr.Cases) {
			t.Fatalf("%v covered %d of %d cases", pol, len(hr.Volume[pol]), len(hr.Cases))
		}
	}
	if _, err := hr.Profile(); err != nil {
		t.Fatal(err)
	}
	tio, err := RunTraversalIO(insts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range TraversalAlgorithms {
		if len(tio.Volume[name]) != len(tio.Cases) {
			t.Fatalf("%s covered %d of %d cases", name, len(tio.Volume[name]), len(tio.Cases))
		}
	}
	if _, err := tio.Profile(); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1Rows(t *testing.T) {
	rows, err := RunTheorem1(3, 4, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		if r.PostOrder != r.WantPO {
			t.Fatalf("L=%d: postorder %d != closed form %d", r.Levels, r.PostOrder, r.WantPO)
		}
		if r.Optimal != r.WantOpt {
			t.Fatalf("L=%d: optimal %d != closed form %d", r.Levels, r.Optimal, r.WantOpt)
		}
		if r.Ratio <= prev {
			t.Fatalf("ratio not growing at L=%d", r.Levels)
		}
		prev = r.Ratio
	}
	if _, err := RunTheorem1(1, 1, 10, 1); err == nil {
		t.Fatal("invalid harpoon accepted")
	}
}

func TestTheorem2Rows(t *testing.T) {
	rows, err := RunTheorem2(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Consistent {
			t.Fatalf("reduction inconsistent on %v: solvable=%v io=%d bound=%d",
				r.Items, r.Solvable, r.MinIO, r.Bound)
		}
	}
}

func TestSortedNames(t *testing.T) {
	insts := smallSuite(t)
	names := SortedNames(insts)
	if len(names) != len(insts) {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("not sorted")
		}
	}
}
