// Package experiments reproduces every table and figure of Section VI.
// Each Run* function computes the raw data; the Format* helpers print it the
// way the paper reports it. cmd/experiments and the repository-level
// benchmarks are thin wrappers around this package.
//
// All solvers are driven by name through the schedule registry and executed
// on the schedule batch evaluator; this package contains no per-algorithm
// dispatch of its own.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/minio"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/tree"

	// Register the MinMemory solvers with the schedule registry; minio
	// (imported above for the 2-Partition subroutine) and the schedule
	// package itself register the MinIO side.
	_ "repro/internal/traversal"
)

// mustLookup fetches a registered algorithm; the names used by this package
// are registered by the imports above, so a miss is a programming error.
func mustLookup(name string) schedule.Algorithm {
	a, err := schedule.Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

// toGridInstances adapts dataset instances to the schedule batch evaluator.
func toGridInstances(insts []dataset.Instance) []schedule.Instance {
	out := make([]schedule.Instance, len(insts))
	for i, inst := range insts {
		out[i] = schedule.Instance{Name: inst.Name, Tree: inst.Tree}
	}
	return out
}

// MemoryComparison is the raw data behind Table I / Figure 5 (assembly
// trees) and Table II / Figure 9 (random-weight trees).
type MemoryComparison struct {
	Names     []string
	PostOrder []int64
	Optimal   []int64
}

// RunMemoryComparison computes the best-postorder and optimal memory for
// every instance.
func RunMemoryComparison(insts []dataset.Instance) MemoryComparison {
	po, opt := mustLookup("postorder"), mustLookup("minmem")
	mc := MemoryComparison{}
	for _, inst := range insts {
		poOut, err1 := po.Run(schedule.Request{Tree: inst.Tree})
		optOut, err2 := opt.Run(schedule.Request{Tree: inst.Tree})
		if err1 != nil || err2 != nil {
			// The exact solvers never fail on a valid tree.
			panic(fmt.Sprintf("experiments: %s: %v %v", inst.Name, err1, err2))
		}
		mc.Names = append(mc.Names, inst.Name)
		mc.PostOrder = append(mc.PostOrder, poOut.Memory)
		mc.Optimal = append(mc.Optimal, optOut.Memory)
	}
	return mc
}

// Stats summarizes a comparison the way Tables I and II do.
type Stats struct {
	Cases           int
	NonOptimal      int
	FractionNonOpt  float64
	MaxRatio        float64
	MeanRatio       float64
	StdDevRatio     float64
	MeanRatioNonOpt float64 // mean over the non-optimal cases only
	WorstInstance   string
}

// Stats computes the summary.
func (mc MemoryComparison) Stats() Stats {
	st := Stats{Cases: len(mc.PostOrder), MaxRatio: 1}
	if st.Cases == 0 {
		return st
	}
	var sum, sumNon float64
	ratios := make([]float64, st.Cases)
	for i := range mc.PostOrder {
		r := float64(mc.PostOrder[i]) / float64(mc.Optimal[i])
		ratios[i] = r
		sum += r
		if mc.PostOrder[i] > mc.Optimal[i] {
			st.NonOptimal++
			sumNon += r
		}
		if r > st.MaxRatio {
			st.MaxRatio = r
			st.WorstInstance = mc.Names[i]
		}
	}
	st.FractionNonOpt = float64(st.NonOptimal) / float64(st.Cases)
	st.MeanRatio = sum / float64(st.Cases)
	var v float64
	for _, r := range ratios {
		v += (r - st.MeanRatio) * (r - st.MeanRatio)
	}
	st.StdDevRatio = math.Sqrt(v / float64(st.Cases))
	if st.NonOptimal > 0 {
		st.MeanRatioNonOpt = sumNon / float64(st.NonOptimal)
	}
	return st
}

// Profile returns Figure 5/9-style curves (PostOrder vs Optimal). When
// nonOptimalOnly is set, instances where PostOrder is optimal are dropped,
// matching Figure 5's framing.
func (mc MemoryComparison) Profile(nonOptimalOnly bool) ([]profile.Curve, error) {
	var po, opt []float64
	for i := range mc.PostOrder {
		if nonOptimalOnly && mc.PostOrder[i] == mc.Optimal[i] {
			continue
		}
		po = append(po, float64(mc.PostOrder[i]))
		opt = append(opt, float64(mc.Optimal[i]))
	}
	if len(po) == 0 {
		// All optimal: degenerate but valid single-point profile.
		po, opt = []float64{1}, []float64{1}
	}
	return profile.Compute(profile.Table{
		Methods: []string{"Optimal", "PostOrder"},
		Costs:   [][]float64{opt, po},
	})
}

// FormatStats renders a Table I / Table II block.
func FormatStats(title string, st Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  Test cases                              %d\n", st.Cases)
	fmt.Fprintf(&b, "  Non optimal PostOrder traversals        %.1f%% (%d)\n", 100*st.FractionNonOpt, st.NonOptimal)
	fmt.Fprintf(&b, "  Max. PostOrder to opt. cost ratio       %.2f\n", st.MaxRatio)
	fmt.Fprintf(&b, "  Avg. PostOrder to opt. cost ratio       %.2f\n", st.MeanRatio)
	fmt.Fprintf(&b, "  Std. dev. of cost ratio                 %.2f\n", st.StdDevRatio)
	if st.WorstInstance != "" {
		fmt.Fprintf(&b, "  Worst instance                          %s\n", st.WorstInstance)
	}
	return b.String()
}

// TimingResult is the raw data behind Figure 6.
type TimingResult struct {
	Names   []string
	Seconds map[string][]float64 // algorithm (registry name) → per-instance wall time
}

// TimingAlgorithms is the display order of Figure 6 (registry names).
var TimingAlgorithms = []string{"minmem", "postorder", "liu"}

// RunTimings measures the wall-clock time of the three MinMemory algorithms
// on every instance (one run each, on a single worker so measurements do not
// contend; the algorithms are deterministic).
func RunTimings(insts []dataset.Instance) TimingResult {
	jobs := schedule.MinMemoryGrid(toGridInstances(insts), TimingAlgorithms)
	rows, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{Workers: 1})
	if err != nil {
		panic(err) // the exact solvers never fail on a valid tree
	}
	tr := TimingResult{Seconds: map[string][]float64{}}
	for _, inst := range insts {
		tr.Names = append(tr.Names, inst.Name)
	}
	for _, row := range rows {
		tr.Seconds[row.Algorithm] = append(tr.Seconds[row.Algorithm], row.Seconds)
	}
	return tr
}

// Profile returns Figure 6-style runtime curves.
func (tr TimingResult) Profile() ([]profile.Curve, error) {
	methods := make([]string, len(TimingAlgorithms))
	costs := make([][]float64, len(TimingAlgorithms))
	for i, alg := range TimingAlgorithms {
		methods[i] = schedule.DisplayName(alg)
		costs[i] = tr.Seconds[alg]
	}
	return profile.Compute(profile.Table{Methods: methods, Costs: costs})
}

// FastestCounts reports how often each algorithm was the (possibly tied)
// fastest, Figure 6's headline number.
func (tr TimingResult) FastestCounts() map[string]int {
	out := map[string]int{}
	n := len(tr.Names)
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for _, alg := range TimingAlgorithms {
			if tr.Seconds[alg][i] < best {
				best = tr.Seconds[alg][i]
			}
		}
		for _, alg := range TimingAlgorithms {
			if tr.Seconds[alg][i] <= best*1.0000001 {
				out[alg]++
			}
		}
	}
	return out
}

// MemoryFractions are the points of the out-of-core memory sweep: the
// available memory interpolates between max MemReq (fraction 0) and the
// in-core optimal (fraction 1), as in Section VI-D.
var MemoryFractions = []float64{0, 1.0 / 3, 2.0 / 3}

// sweepFromOptimum returns the memory values for one tree given its in-core
// optimum hi, deduplicated.
func sweepFromOptimum(t *tree.Tree, hi int64) []int64 {
	lo := t.MaxMemReq()
	var out []int64
	for _, f := range MemoryFractions {
		m := lo + int64(f*float64(hi-lo))
		if len(out) == 0 || out[len(out)-1] != m {
			out = append(out, m)
		}
	}
	return out
}

// sweepMemories is sweepFromOptimum with the optimum solved by minmem.
func sweepMemories(t *tree.Tree) ([]int64, error) {
	opt, err := mustLookup("minmem").Run(schedule.Request{Tree: t})
	if err != nil {
		return nil, err
	}
	return sweepFromOptimum(t, opt.Memory), nil
}

// HeuristicResult is the raw data behind Figure 7: I/O volume of every
// eviction policy on the same traversals, keyed by registry policy name.
type HeuristicResult struct {
	Cases  []string
	Volume map[string][]float64
}

// RunHeuristics reproduces Figure 7: traversals from MinMem (the paper's
// choice for this figure), every eviction policy, across the memory sweep.
// The grid is evaluated concurrently; results are deterministic.
func RunHeuristics(insts []dataset.Instance) (HeuristicResult, error) {
	policies := schedule.EvictionPolicyNames()
	// The orderBy solver is minmem, so its outcome already carries the
	// in-core optimum the sweep is anchored on — no second solve.
	memories := func(t *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return sweepFromOptimum(t, out.Memory), nil
	}
	jobs, err := schedule.MinIOGrid(context.Background(), toGridInstances(insts), "minmem", policies, memories, 0)
	if err != nil {
		return HeuristicResult{}, err
	}
	rows, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		return HeuristicResult{}, err
	}
	hr := HeuristicResult{Volume: map[string][]float64{}}
	for _, row := range rows {
		if row.Algorithm == policies[0] {
			hr.Cases = append(hr.Cases, fmt.Sprintf("%s@%d", row.Instance, row.Budget))
		}
		hr.Volume[row.Algorithm] = append(hr.Volume[row.Algorithm], float64(row.IO))
	}
	return hr, nil
}

// Profile returns Figure 7-style curves.
func (hr HeuristicResult) Profile() ([]profile.Curve, error) {
	policies := schedule.EvictionPolicyNames()
	methods := make([]string, len(policies))
	costs := make([][]float64, len(policies))
	for i, pol := range policies {
		methods[i] = "MinMem + " + schedule.DisplayName(pol)
		costs[i] = hr.Volume[pol]
	}
	return profile.Compute(profile.Table{Methods: methods, Costs: costs})
}

// TraversalIOResult is the raw data behind Figure 8: the three traversal
// algorithms under the First Fit policy.
type TraversalIOResult struct {
	Cases  []string
	Volume map[string][]float64
}

// traversalIOOrderings are the MinMemory algorithms compared in Figure 8.
var traversalIOOrderings = []string{"postorder", "liu", "minmem"}

// TraversalAlgorithms is the display order of Figure 8 (labels derived from
// the registry display names).
var TraversalAlgorithms = func() []string {
	out := make([]string, len(traversalIOOrderings))
	for i, alg := range traversalIOOrderings {
		out[i] = schedule.DisplayName(alg) + " + " + schedule.DisplayName("first-fit")
	}
	return out
}()

// RunTraversalIO reproduces Figure 8: one MinIO grid per traversal
// algorithm, all replayed under First Fit across the memory sweep.
func RunTraversalIO(insts []dataset.Instance) (TraversalIOResult, error) {
	tio := TraversalIOResult{Volume: map[string][]float64{}}
	gridInsts := toGridInstances(insts)
	// The budget sweep is a property of the instance, not of the ordering
	// algorithm: compute it once per tree so the three grids below don't
	// re-run the exact solver to rediscover identical budgets.
	sweeps := make(map[*tree.Tree][]int64, len(insts))
	for _, inst := range insts {
		mems, err := sweepMemories(inst.Tree)
		if err != nil {
			return tio, err
		}
		sweeps[inst.Tree] = mems
	}
	memories := func(t *tree.Tree, _ schedule.Outcome) ([]int64, error) { return sweeps[t], nil }
	// One grid per ordering algorithm; the case list (instance × budget) is
	// identical across grids, so it is recorded on the first.
	for k, orderBy := range traversalIOOrderings {
		jobs, err := schedule.MinIOGrid(context.Background(), gridInsts, orderBy, []string{"first-fit"}, memories, 0)
		if err != nil {
			return tio, err
		}
		rows, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{})
		if err != nil {
			return tio, err
		}
		label := TraversalAlgorithms[k]
		for _, row := range rows {
			if k == 0 {
				tio.Cases = append(tio.Cases, fmt.Sprintf("%s@%d", row.Instance, row.Budget))
			}
			tio.Volume[label] = append(tio.Volume[label], float64(row.IO))
		}
	}
	return tio, nil
}

// Profile returns Figure 8-style curves.
func (tio TraversalIOResult) Profile() ([]profile.Curve, error) {
	costs := make([][]float64, len(TraversalAlgorithms))
	for i, name := range TraversalAlgorithms {
		costs[i] = tio.Volume[name]
	}
	return profile.Compute(profile.Table{Methods: TraversalAlgorithms, Costs: costs})
}

// Theorem1Row is one line of the Theorem 1 demonstration: the nested
// harpoon at a given depth with the closed-form and measured memories.
type Theorem1Row struct {
	Levels             int
	Nodes              int
	PostOrder, Optimal int64
	WantPO, WantOpt    int64
	Ratio              float64
}

// RunTheorem1 builds nested harpoons of growing depth and checks the
// algorithms against the closed forms of the proof.
func RunTheorem1(b int, maxLevels int, m, eps int64) ([]Theorem1Row, error) {
	po, opt := mustLookup("postorder"), mustLookup("minmem")
	var rows []Theorem1Row
	for l := 1; l <= maxLevels; l++ {
		h, err := tree.NestedHarpoon(b, l, m, eps)
		if err != nil {
			return nil, err
		}
		poOut, err := po.Run(schedule.Request{Tree: h})
		if err != nil {
			return nil, err
		}
		optOut, err := opt.Run(schedule.Request{Tree: h})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Theorem1Row{
			Levels:    l,
			Nodes:     h.Len(),
			PostOrder: poOut.Memory,
			Optimal:   optOut.Memory,
			WantPO:    tree.HarpoonPostOrderMemory(b, l, m, eps),
			WantOpt:   tree.HarpoonOptimalMemory(b, l, m, eps),
			Ratio:     float64(poOut.Memory) / float64(optOut.Memory),
		})
	}
	return rows, nil
}

// Theorem2Row is one verification of the NP-hardness reduction.
type Theorem2Row struct {
	Items      []int64
	Solvable   bool
	MinIO      int64
	Bound      int64
	Consistent bool
}

// RunTheorem2 draws even-sum 2-Partition instances deterministically and
// checks that the reduction tree has MinIO ≤ S/2 exactly when the instance
// is solvable.
func RunTheorem2(cases int) ([]Theorem2Row, error) {
	oracle := mustLookup("minio-brute")
	rng := newDeterministicRand(2011)
	var rows []Theorem2Row
	for len(rows) < cases {
		n := 2 + rng.Intn(4)
		a := make([]int64, n)
		var sum int64
		for i := range a {
			a[i] = 1 + int64(rng.Intn(9))
			sum += a[i]
		}
		if sum%2 != 0 {
			continue
		}
		inst, err := tree.NewTwoPartition(a)
		if err != nil {
			return nil, err
		}
		out, err := oracle.Run(schedule.Request{Tree: inst.Tree, Memory: inst.Memory})
		if err != nil {
			return nil, err
		}
		solvable := minio.SolveTwoPartition(a)
		rows = append(rows, Theorem2Row{
			Items:      a,
			Solvable:   solvable,
			MinIO:      out.IO,
			Bound:      inst.IOBound,
			Consistent: solvable == (out.IO <= inst.IOBound),
		})
	}
	return rows, nil
}

// FormatCurveSummaries prints, for each profile curve, the fraction of
// cases where the method was best (τ=1), within 10% (τ=1.1), and its mean
// ratio — the numbers one reads off Figures 5–9.
func FormatCurveSummaries(curves []profile.Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-26s %8s %8s %8s %8s\n", "method", "best", "τ≤1.1", "mean", "max")
	for _, c := range curves {
		st := profile.Summarize(c)
		fmt.Fprintf(&b, "  %-26s %7.1f%% %7.1f%% %8.3f %8.3f\n",
			c.Method, 100*c.Fraction(1), 100*c.Fraction(1.1), st.Mean, st.Max)
	}
	return b.String()
}

// SortedNames returns the instance names sorted, for stable output.
func SortedNames(insts []dataset.Instance) []string {
	names := make([]string, len(insts))
	for i, inst := range insts {
		names[i] = inst.Name
	}
	sort.Strings(names)
	return names
}
