package experiments

import "math/rand"

// newDeterministicRand returns a seeded PRNG; isolated here so every
// experiment draws from an explicitly seeded source (reproducibility is a
// requirement for regenerating the tables).
func newDeterministicRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
