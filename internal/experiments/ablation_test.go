package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestParallelMatchesSequential(t *testing.T) {
	insts := smallSuite(t)
	seq := RunMemoryComparison(insts)
	for _, workers := range []int{1, 3, 8} {
		par, err := RunMemoryComparisonParallel(context.Background(), insts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel (%d workers) differs from sequential", workers)
		}
	}
}

func TestAblationPostorderRule(t *testing.T) {
	insts := dataset.RandomWeightSuite(smallSuite(t), 2)
	frac, ratio := AblationPostorderRule(insts)
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction %f out of range", frac)
	}
	if ratio < 1 {
		t.Fatalf("mean ratio %f below 1: natural postorder beat the best postorder", ratio)
	}
}

func TestAblationMinMemReuse(t *testing.T) {
	insts := smallSuite(t)[:8]
	withR, withoutR, err := AblationMinMemReuse(insts)
	if err != nil {
		t.Fatal(err)
	}
	if withR <= 0 || withoutR <= 0 {
		t.Fatal("no Explore calls counted")
	}
	if withoutR < withR {
		t.Fatalf("restarting was cheaper (%d) than reuse (%d)?", withoutR, withR)
	}
}

func TestAblationBestKWindow(t *testing.T) {
	insts := smallSuite(t)[:6]
	io, err := AblationBestKWindow(insts, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(io) != 2 {
		t.Fatalf("windows missing: %v", io)
	}
	// K=1 degenerates to a single-file greedy; a wider window cannot lose
	// on total overshoot in aggregate by much — sanity: both non-negative.
	for k, v := range io {
		if v < 0 {
			t.Fatalf("K=%d negative IO %d", k, v)
		}
	}
}

func TestFormatAblations(t *testing.T) {
	out, err := FormatAblations(smallSuite(t)[:6])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"child-sorting", "frontier reuse", "Best-K"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
