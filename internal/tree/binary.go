package tree

import (
	"encoding/binary"
	"fmt"
)

// The binary .tree wire form is the compact sibling of the textual format:
//
//	magic byte 0xA9, version byte 0x01
//	uvarint p (number of nodes)
//	p × ( uvarint parent+1 , uvarint f , varint n )
//
// Parents are stored shifted by one so the root's NoParent (-1) encodes as
// zero; f is validated non-negative by New so it travels as a uvarint; n may
// be negative (model transforms) so it travels zigzag. The document is
// self-delimiting — DecodeBinary returns the remaining bytes — so documents
// concatenate on one stream exactly like the textual form. Both codecs
// rebuild through New, so a binary round trip is bit-identical to a textual
// one.

// BinaryMagic is the first byte of every binary .tree document. It is
// deliberately non-ASCII so binary and textual documents can never be
// confused: a textual document starts with '#' or 'p'.
const BinaryMagic = 0xA9

// BinaryVersion is the current (and only) binary .tree format version.
const BinaryVersion = 1

// AppendBinary serializes t in the binary .tree wire form, appending to dst
// (pass nil to allocate), and returns the extended slice.
func (t *Tree) AppendBinary(dst []byte) []byte {
	dst = append(dst, BinaryMagic, BinaryVersion)
	dst = binary.AppendUvarint(dst, uint64(t.Len()))
	for i := 0; i < t.Len(); i++ {
		dst = binary.AppendUvarint(dst, uint64(t.Parent(i)+1))
		dst = binary.AppendUvarint(dst, uint64(t.F(i)))
		dst = binary.AppendVarint(dst, t.N(i))
	}
	return dst
}

// DecodeBinary parses one binary .tree document from the front of data and
// returns the tree plus the remaining bytes, so concatenated documents
// decode one at a time. The tree is rebuilt through New, so a decoded tree
// is validated and bit-identical to the encoded one.
func DecodeBinary(data []byte) (*Tree, []byte, error) {
	if len(data) < 2 {
		return nil, nil, fmt.Errorf("tree: binary document truncated (%d bytes)", len(data))
	}
	if data[0] != BinaryMagic {
		return nil, nil, fmt.Errorf("tree: bad binary magic 0x%02X (want 0x%02X)", data[0], BinaryMagic)
	}
	if data[1] != BinaryVersion {
		return nil, nil, fmt.Errorf("tree: unsupported binary version %d (want %d)", data[1], BinaryVersion)
	}
	rest := data[2:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, nil, fmt.Errorf("tree: binary document has a malformed node count")
	}
	rest = rest[n:]
	// Every node takes at least three bytes, so a corrupt count larger than
	// the remaining payload is rejected before allocating anything.
	if count < 1 || count > uint64(len(rest)/3)+1 {
		return nil, nil, fmt.Errorf("tree: binary node count %d does not fit the %d-byte payload", count, len(rest))
	}
	p := int(count)
	parent := make([]int, p)
	f := make([]int64, p)
	nn := make([]int64, p)
	for i := 0; i < p; i++ {
		pv, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("tree: binary node %d has a malformed parent", i)
		}
		rest = rest[n:]
		if pv > uint64(p) {
			return nil, nil, fmt.Errorf("tree: binary node %d has out-of-range parent %d", i, int64(pv)-1)
		}
		parent[i] = int(pv) - 1
		fv, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("tree: binary node %d has a malformed f", i)
		}
		rest = rest[n:]
		f[i] = int64(fv)
		nv, n := binary.Varint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("tree: binary node %d has a malformed n", i)
		}
		rest = rest[n:]
		nn[i] = nv
	}
	t, err := New(parent, f, nn)
	if err != nil {
		return nil, nil, err
	}
	return t, rest, nil
}
