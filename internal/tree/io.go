package tree

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The .tree text format is line oriented:
//
//	# comment
//	p <number-of-nodes>
//	<node> <parent> <f> <n>
//
// one node line per node, parent −1 for the root. Node ids are 0-based.
// Several documents may be concatenated on one stream (a corpus on stdin,
// say): each document ends after its header's node count is satisfied, and
// Decoder reads them one at a time.

// Write serializes t in the .tree text format.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d\n", t.Len()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", i, t.Parent(i), t.F(i), t.N(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decoder reads a stream of .tree documents. Construct with NewDecoder.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder returns a decoder reading consecutive .tree documents from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Decoder{sc: sc}
}

// Decode parses the next document of the stream. At the clean end of the
// stream it returns io.EOF; a document cut off mid-way is an error, not
// EOF.
func (d *Decoder) Decode() (*Tree, error) {
	var (
		parent []int
		f, n   []int64
		seen   []bool
		p      = -1
		nodes  = 0
	)
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "p" {
			if p != -1 {
				return nil, fmt.Errorf("tree: line %d: duplicate header", d.line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("tree: line %d: malformed header %q", d.line, text)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("tree: line %d: bad node count %q", d.line, fields[1])
			}
			p = v
			parent = make([]int, p)
			f = make([]int64, p)
			n = make([]int64, p)
			seen = make([]bool, p)
			continue
		}
		if p == -1 {
			return nil, fmt.Errorf("tree: line %d: node line before header", d.line)
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("tree: line %d: want 4 fields, got %d", d.line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= p {
			return nil, fmt.Errorf("tree: line %d: bad node id %q", d.line, fields[0])
		}
		if seen[id] {
			return nil, fmt.Errorf("tree: line %d: duplicate node %d", d.line, id)
		}
		seen[id] = true
		if parent[id], err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad parent %q", d.line, fields[1])
		}
		if f[id], err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad f %q", d.line, fields[2])
		}
		if n[id], err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad n %q", d.line, fields[3])
		}
		if nodes++; nodes == p {
			// Document complete: the next Decode starts a fresh header.
			return New(parent, f, n)
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, err
	}
	if p == -1 {
		return nil, io.EOF
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("tree: node %d missing", id)
		}
	}
	return New(parent, f, n) // unreachable: nodes == p returns above
}

// Read parses a single tree in the .tree text format, rejecting an empty
// stream and trailing content after the document.
func Read(r io.Reader) (*Tree, error) {
	dec := NewDecoder(r)
	t, err := dec.Decode()
	if err == io.EOF {
		return nil, fmt.Errorf("tree: missing header")
	}
	if err != nil {
		return nil, err
	}
	if _, err := dec.Decode(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("tree: trailing content after document")
	}
	return t, nil
}
