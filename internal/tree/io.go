package tree

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The .tree text format is line oriented:
//
//	# comment
//	p <number-of-nodes>
//	<node> <parent> <f> <n>
//
// one node line per node, parent −1 for the root. Node ids are 0-based.

// Write serializes t in the .tree text format.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d\n", t.Len()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", i, t.Parent(i), t.F(i), t.N(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a tree in the .tree text format.
func Read(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var (
		parent []int
		f, n   []int64
		seen   []bool
		p      = -1
		line   = 0
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "p" {
			if p != -1 {
				return nil, fmt.Errorf("tree: line %d: duplicate header", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("tree: line %d: malformed header %q", line, text)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("tree: line %d: bad node count %q", line, fields[1])
			}
			p = v
			parent = make([]int, p)
			f = make([]int64, p)
			n = make([]int64, p)
			seen = make([]bool, p)
			continue
		}
		if p == -1 {
			return nil, fmt.Errorf("tree: line %d: node line before header", line)
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("tree: line %d: want 4 fields, got %d", line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= p {
			return nil, fmt.Errorf("tree: line %d: bad node id %q", line, fields[0])
		}
		if seen[id] {
			return nil, fmt.Errorf("tree: line %d: duplicate node %d", line, id)
		}
		seen[id] = true
		if parent[id], err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad parent %q", line, fields[1])
		}
		if f[id], err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad f %q", line, fields[2])
		}
		if n[id], err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: line %d: bad n %q", line, fields[3])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == -1 {
		return nil, fmt.Errorf("tree: missing header")
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("tree: node %d missing", id)
		}
	}
	return New(parent, f, n)
}
