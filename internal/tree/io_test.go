package tree

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// A stream of concatenated .tree documents decodes one tree at a time, in
// order, ending with io.EOF — the substrate for piping corpora through the
// grid evaluator.
func TestDecoderStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var want []*Tree
	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		tr, err := Random(rng, RandomOptions{Nodes: 10 + 7*i, MaxF: 20, MaxN: 5})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, tr)
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("# interleaved comment\n\n")
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("document %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.ParentVector(), w.ParentVector()) ||
			!reflect.DeepEqual(got.FVector(), w.FVector()) ||
			!reflect.DeepEqual(got.NVector(), w.NVector()) {
			t.Fatalf("document %d differs after decode", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("after last document: %v, want io.EOF", err)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("repeated Decode after EOF: %v, want io.EOF", err)
	}
}

// A document cut off mid-way is an error, not EOF; the next document's
// error messages keep counting lines across the whole stream.
func TestDecoderErrors(t *testing.T) {
	dec := NewDecoder(strings.NewReader("p 2\n0 -1 1 0\n"))
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("truncated document: %v, want a hard error", err)
	}

	dec = NewDecoder(strings.NewReader("p 1\n0 -1 1 0\nnot a header\n"))
	if _, err := dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("second document error does not carry the stream line number: %v", err)
	}
}

// Read rejects trailing content: it parses exactly one document.
func TestReadRejectsTrailing(t *testing.T) {
	doc := "p 1\n0 -1 1 0\n"
	if _, err := Read(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader(doc + doc)); err == nil {
		t.Fatal("two concatenated documents accepted by Read")
	}
	// Trailing comments and blank lines are not content.
	if _, err := Read(strings.NewReader(doc + "\n# trailing comment\n")); err != nil {
		t.Fatalf("trailing comment rejected: %v", err)
	}
}
