package tree

import "fmt"

// builder incrementally assembles a tree from parent links.
type builder struct {
	parent []int
	f, n   []int64
}

func (b *builder) add(parent int, f, n int64) int {
	id := len(b.parent)
	b.parent = append(b.parent, parent)
	b.f = append(b.f, f)
	b.n = append(b.n, n)
	return id
}

func (b *builder) build() *Tree {
	t, err := New(b.parent, b.f, b.n)
	if err != nil {
		panic(fmt.Sprintf("tree: internal builder produced invalid tree: %v", err))
	}
	return t
}

// Chain returns a path of p nodes (root at the top) whose node i from the
// root has input file f[i] and execution file n[i]. Useful for tests.
func Chain(f, n []int64) (*Tree, error) {
	if len(f) != len(n) || len(f) == 0 {
		return nil, fmt.Errorf("tree: chain needs equal non-empty size vectors")
	}
	parent := make([]int, len(f))
	parent[0] = NoParent
	for i := 1; i < len(f); i++ {
		parent[i] = i - 1
	}
	return New(parent, f, n)
}

// Harpoon returns the single-level harpoon graph of Figure 3(a) used in the
// proof of Theorem 1: a zero-weight root with b identical branches, each a
// chain root→x (file M/b) →y (file eps) →z (file M, leaf). All execution
// files are zero.
//
// The best postorder traversal needs M + eps + (b−1)·M/b memory while the
// optimal traversal (alternating between branches) needs only M + b·eps.
// M must be divisible by b so that the branch file sizes are exact.
func Harpoon(b int, m, eps int64) (*Tree, error) {
	return NestedHarpoon(b, 1, m, eps)
}

// NestedHarpoon returns the L-level recursive harpoon of Figure 3(b):
// NestedHarpoon(b, 1, M, eps) is Harpoon(b, M, eps), and each deeper level
// replaces every size-M leaf with the root of another harpoon (reached
// through an eps-file edge).
//
// Best postorder:   M + eps + L·(b−1)·M/b
// Optimal traversal: M + eps + L·(b−1)·eps
//
// so the postorder-to-optimal ratio grows without bound as L grows and eps
// shrinks (Theorem 1).
func NestedHarpoon(b, levels int, m, eps int64) (*Tree, error) {
	if b < 2 {
		return nil, fmt.Errorf("tree: harpoon needs b ≥ 2 branches, got %d", b)
	}
	if levels < 1 {
		return nil, fmt.Errorf("tree: harpoon needs ≥ 1 level, got %d", levels)
	}
	if m <= 0 || eps <= 0 {
		return nil, fmt.Errorf("tree: harpoon needs positive M and eps, got M=%d eps=%d", m, eps)
	}
	if m%int64(b) != 0 {
		return nil, fmt.Errorf("tree: harpoon needs b | M, got M=%d b=%d", m, b)
	}
	bl := &builder{}
	root := bl.add(NoParent, 0, 0)
	var attach func(parentID, level int)
	attach = func(parentID, level int) {
		for i := 0; i < b; i++ {
			x := bl.add(parentID, m/int64(b), 0)
			y := bl.add(x, eps, 0)
			if level == 1 {
				bl.add(y, m, 0) // leaf z
			} else {
				sub := bl.add(y, eps, 0) // root of the next harpoon level
				attach(sub, level-1)
			}
		}
	}
	attach(root, levels)
	return bl.build(), nil
}

// HarpoonPostOrderMemory returns the memory needed by the best postorder
// traversal of NestedHarpoon(b, levels, m, eps): M + eps + L·(b−1)·M/b.
func HarpoonPostOrderMemory(b, levels int, m, eps int64) int64 {
	return m + eps + int64(levels)*int64(b-1)*(m/int64(b))
}

// HarpoonOptimalMemory returns the memory needed by the optimal traversal of
// NestedHarpoon(b, levels, m, eps): M + eps + L·(b−1)·eps.
func HarpoonOptimalMemory(b, levels int, m, eps int64) int64 {
	return m + eps + int64(levels)*int64(b-1)*eps
}

// TwoPartitionInstance is the MinIO NP-hardness gadget of Theorem 2
// (Figure 4), built from a 2-Partition instance {a_1, …, a_n} with
// S = Σ a_i.
type TwoPartitionInstance struct {
	Tree *Tree
	// Memory is the main-memory size of the reduction, M = 2S.
	Memory int64
	// IOBound is the decision threshold: the instance admits an out-of-core
	// traversal with I/O volume ≤ IOBound = S/2 if and only if the
	// 2-Partition instance has a solution.
	IOBound int64
	// Root, Big, BigOut identify the special nodes; Items[i] and Outs[i] are
	// the T_i / Tout_i pairs carrying a_i.
	Root, Big, BigOut int
	Items, Outs       []int
}

// NewTwoPartition builds the reduction tree for the given positive integers.
// The sum S = Σ a_i must be even (otherwise 2-Partition is trivially
// infeasible and the constructor rejects the input to keep file sizes
// integral).
//
// Structure (out-tree, all execution files zero):
//
//	root T_in (f=0) has n+1 children:
//	  T_i   (f = a_i) → Tout_i   (f = S,   leaf)   for each i
//	  T_big (f = S)   → Tout_big (f = S/2, leaf)
//
// MemReq(T_in) = Σ a_i + S = 2S = M is the largest requirement of any node.
func NewTwoPartition(a []int64) (*TwoPartitionInstance, error) {
	if len(a) == 0 {
		return nil, fmt.Errorf("tree: empty 2-partition instance")
	}
	var s int64
	for i, v := range a {
		if v <= 0 {
			return nil, fmt.Errorf("tree: 2-partition item %d is %d; need positive", i, v)
		}
		s += v
	}
	if s%2 != 0 {
		return nil, fmt.Errorf("tree: 2-partition sum %d is odd", s)
	}
	bl := &builder{}
	inst := &TwoPartitionInstance{Memory: 2 * s, IOBound: s / 2}
	inst.Root = bl.add(NoParent, 0, 0)
	for _, v := range a {
		ti := bl.add(inst.Root, v, 0)
		to := bl.add(ti, s, 0)
		inst.Items = append(inst.Items, ti)
		inst.Outs = append(inst.Outs, to)
	}
	inst.Big = bl.add(inst.Root, s, 0)
	inst.BigOut = bl.add(inst.Big, s/2, 0)
	inst.Tree = bl.build()
	return inst, nil
}
