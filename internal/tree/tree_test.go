package tree

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleTree builds the 8-node tree used across tests:
//
//	      0 (root, f=0,n=1)
//	     / \
//	    1   2
//	   / \   \
//	  3   4   5
//	 /         \
//	6           7
func sampleTree(t *testing.T) *Tree {
	t.Helper()
	parent := []int{NoParent, 0, 0, 1, 1, 2, 3, 5}
	f := []int64{0, 4, 2, 3, 1, 5, 2, 6}
	n := []int64{1, 2, 0, 1, 3, 2, 1, 0}
	tr, err := New(parent, f, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		parent []int
		f, n   []int64
	}{
		{"empty", nil, nil, nil},
		{"two roots", []int{-1, -1}, []int64{1, 1}, []int64{0, 0}},
		{"no root", []int{1, 0}, []int64{1, 1}, []int64{0, 0}},
		{"self parent", []int{-1, 1}, []int64{1, 1}, []int64{0, 0}},
		{"out of range", []int{-1, 5}, []int64{1, 1}, []int64{0, 0}},
		{"cycle", []int{-1, 2, 1}, []int64{1, 1, 1}, []int64{0, 0, 0}},
		{"length mismatch", []int{-1, 0}, []int64{1}, []int64{0, 0}},
		{"negative f", []int{-1, 0}, []int64{1, -2}, []int64{0, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.parent, c.f, c.n); err == nil {
				t.Fatalf("New(%v) succeeded, want error", c.parent)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	tr := sampleTree(t)
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	if tr.Root() != 0 {
		t.Fatalf("Root = %d, want 0", tr.Root())
	}
	if tr.Parent(7) != 5 || tr.Parent(0) != NoParent {
		t.Fatalf("bad parents: Parent(7)=%d Parent(0)=%d", tr.Parent(7), tr.Parent(0))
	}
	if got := tr.Children(1, nil); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("Children(1) = %v, want [3 4]", got)
	}
	if tr.NumChildren(0) != 2 || tr.NumChildren(6) != 0 {
		t.Fatalf("bad child counts")
	}
	if !tr.IsLeaf(6) || tr.IsLeaf(1) {
		t.Fatalf("bad IsLeaf")
	}
	if tr.Child(0, 1) != 2 {
		t.Fatalf("Child(0,1) = %d, want 2", tr.Child(0, 1))
	}
}

func TestMemReq(t *testing.T) {
	tr := sampleTree(t)
	// MemReq(1) = f(1)+n(1)+f(3)+f(4) = 4+2+3+1 = 10
	if got := tr.MemReq(1); got != 10 {
		t.Fatalf("MemReq(1) = %d, want 10", got)
	}
	// MemReq(6) = 2+1 = 3 (leaf)
	if got := tr.MemReq(6); got != 3 {
		t.Fatalf("MemReq(6) = %d, want 3", got)
	}
	// MemReq(5) = 5+2+6 = 13, the maximum
	if got := tr.MaxMemReq(); got != 13 {
		t.Fatalf("MaxMemReq = %d, want 13", got)
	}
	if got := tr.ChildFileSum(0); got != 6 {
		t.Fatalf("ChildFileSum(0) = %d, want 6", got)
	}
	if got := tr.TotalF(); got != 23 {
		t.Fatalf("TotalF = %d, want 23", got)
	}
}

func TestOrders(t *testing.T) {
	tr := sampleTree(t)
	td := tr.TopDown()
	if err := tr.IsTopDownOrder(td); err != nil {
		t.Fatalf("TopDown not a valid top-down order: %v", err)
	}
	po := tr.Postorder()
	if err := tr.IsBottomUpOrder(po); err != nil {
		t.Fatalf("Postorder not a valid bottom-up order: %v", err)
	}
	if want := []int{6, 3, 4, 1, 7, 5, 2, 0}; !reflect.DeepEqual(po, want) {
		t.Fatalf("Postorder = %v, want %v", po, want)
	}
	if err := tr.IsTopDownOrder(ReverseOrder(po)); err != nil {
		t.Fatalf("reversed postorder should be top-down feasible: %v", err)
	}
	// Error cases.
	if err := tr.IsTopDownOrder([]int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if err := tr.IsTopDownOrder([]int{0, 1, 2, 3, 4, 5, 6, 6}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if err := tr.IsTopDownOrder([]int{1, 0, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("child-before-parent order accepted")
	}
}

func TestSubtreeSizesDepthLeaves(t *testing.T) {
	tr := sampleTree(t)
	sz := tr.SubtreeSizes()
	want := []int{8, 4, 3, 2, 1, 2, 1, 1}
	if !reflect.DeepEqual(sz, want) {
		t.Fatalf("SubtreeSizes = %v, want %v", sz, want)
	}
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tr.Depth())
	}
	if got := tr.Leaves(); !reflect.DeepEqual(got, []int{4, 6, 7}) {
		t.Fatalf("Leaves = %v, want [4 6 7]", got)
	}
}

func TestChainBuilder(t *testing.T) {
	ch, err := Chain([]int64{1, 2, 3}, []int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Len() != 3 || ch.Parent(2) != 1 || ch.Parent(0) != NoParent {
		t.Fatalf("bad chain structure")
	}
	if _, err := Chain(nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := Chain([]int64{1}, []int64{0, 0}); err == nil {
		t.Fatal("mismatched chain accepted")
	}
}

func TestHarpoonStructure(t *testing.T) {
	h, err := Harpoon(3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 root + 3 branches × 3 nodes.
	if h.Len() != 10 {
		t.Fatalf("harpoon has %d nodes, want 10", h.Len())
	}
	if h.NumChildren(h.Root()) != 3 {
		t.Fatalf("harpoon root has %d children, want 3", h.NumChildren(h.Root()))
	}
	// Each branch: M/b=10, eps=1, M=30.
	for k := 0; k < 3; k++ {
		x := h.Child(h.Root(), k)
		if h.F(x) != 10 {
			t.Fatalf("branch head file = %d, want 10", h.F(x))
		}
		y := h.Child(x, 0)
		if h.F(y) != 1 {
			t.Fatalf("branch mid file = %d, want 1", h.F(y))
		}
		z := h.Child(y, 0)
		if h.F(z) != 30 || !h.IsLeaf(z) {
			t.Fatalf("branch leaf file = %d (leaf=%v), want 30 leaf", h.F(z), h.IsLeaf(z))
		}
	}
	// MaxMemReq is the leaf requirement f=30 (+ n=0) or the mid node eps+30.
	if got := h.MaxMemReq(); got != 31 {
		t.Fatalf("harpoon MaxMemReq = %d, want 31", got)
	}
}

func TestNestedHarpoonSizeAndErrors(t *testing.T) {
	h, err := NestedHarpoon(2, 3, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Level L tree size: s(1)=1+3b; s(L)=1+b*(2+1+s(L-1)-? ) — verify recursively.
	var size func(l int) int
	size = func(l int) int {
		if l == 1 {
			return 1 + 3*2
		}
		return 1 + 2*(2+size(l-1))
	}
	if h.Len() != size(3) {
		t.Fatalf("nested harpoon has %d nodes, want %d", h.Len(), size(3))
	}
	for _, bad := range []struct {
		b, l   int
		m, eps int64
	}{
		{1, 1, 10, 1}, {2, 0, 10, 1}, {2, 1, 0, 1}, {2, 1, 10, 0}, {3, 1, 10, 1},
	} {
		if _, err := NestedHarpoon(bad.b, bad.l, bad.m, bad.eps); err == nil {
			t.Fatalf("NestedHarpoon(%+v) accepted", bad)
		}
	}
}

func TestTwoPartitionGadget(t *testing.T) {
	inst, err := NewTwoPartition([]int64{3, 5, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := inst.Tree
	if tr.Len() != 2*4+3 {
		t.Fatalf("gadget has %d nodes, want 11", tr.Len())
	}
	if inst.Memory != 28 || inst.IOBound != 7 {
		t.Fatalf("M=%d IO=%d, want 28, 7", inst.Memory, inst.IOBound)
	}
	if got := tr.MemReq(inst.Root); got != inst.Memory {
		t.Fatalf("MemReq(root) = %d, want %d", got, inst.Memory)
	}
	if got := tr.MaxMemReq(); got != inst.Memory {
		t.Fatalf("MaxMemReq = %d, want %d (root must dominate)", got, inst.Memory)
	}
	if tr.F(inst.Big) != 14 || tr.F(inst.BigOut) != 7 {
		t.Fatalf("big branch files = %d, %d; want 14, 7", tr.F(inst.Big), tr.F(inst.BigOut))
	}
	for i, it := range inst.Items {
		if tr.F(inst.Outs[i]) != 14 {
			t.Fatalf("out file %d = %d, want 14", i, tr.F(inst.Outs[i]))
		}
		if tr.Parent(inst.Outs[i]) != it {
			t.Fatalf("out %d not child of item %d", inst.Outs[i], it)
		}
	}
	// Error cases.
	if _, err := NewTwoPartition(nil); err == nil {
		t.Fatal("empty instance accepted")
	}
	if _, err := NewTwoPartition([]int64{1, 2}); err == nil {
		t.Fatal("odd-sum instance accepted")
	}
	if _, err := NewTwoPartition([]int64{2, -2}); err == nil {
		t.Fatal("negative item accepted")
	}
}

func TestFromReplacementModel(t *testing.T) {
	// Figure 1 example: root A with children B, C, D of file sizes 1, 1, 2;
	// C has children E (1), F (3); F has children G (1), H (2).
	// Node names → ids: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7.
	parent := []int{NoParent, 0, 0, 0, 2, 2, 5, 5}
	f := []int64{1, 1, 1, 2, 1, 3, 1, 2}
	tr, err := FromReplacementModel(parent, f)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 lists the resulting execution files: A:-1, B:0, C:-1, D:0,
	// E:0, F:-2 (hmm figure shows -2 on F), G:0, H:0 — derived from
	// n_i = −min(f_i, Σ children f).
	wantN := []int64{-1, 0, -1, 0, 0, -3, 0, 0}
	// A: min(1, 1+1+2)=1 → −1; C: min(1, 1+3)=1 → −1; F: min(3, 1+2)=3 → −3.
	for i, w := range wantN {
		if tr.N(i) != w {
			t.Fatalf("N(%d) = %d, want %d", i, tr.N(i), w)
		}
	}
	// MemReq must equal max(f_i, Σ children f) for every node.
	for i := 0; i < tr.Len(); i++ {
		want := tr.F(i)
		if cs := tr.ChildFileSum(i); cs > want {
			want = cs
		}
		if got := tr.MemReq(i); got != want {
			t.Fatalf("MemReq(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFromLiuModel(t *testing.T) {
	// Figure 2 example. Ids: x=0, b=1, c=2, d=3, e=4 (child of d),
	// f=5 (child of b), g=6 (child of c), h=7 (child of c).
	nodes := []LiuModelNode{
		{Parent: NoParent, NPlus: 1, NMinus: 3}, // hmm placeholder, replaced below
	}
	_ = nodes
	// Build from the figure's values:
	// x: n_{x+}=1? Figure: x+ 1, x− 3... The figure lists per node (plus,minus):
	// x:(1,3)? Actually labels: x+ 1, x− (unlabeled root output).
	// We instead verify the transformation identities on a custom instance.
	in := []LiuModelNode{
		{Parent: NoParent, NPlus: 9, NMinus: 3},
		{Parent: 0, NPlus: 5, NMinus: 2},
		{Parent: 0, NPlus: 6, NMinus: 2},
		{Parent: 1, NPlus: 4, NMinus: 1},
		{Parent: 1, NPlus: 3, NMinus: 1},
	}
	tr, err := FromLiuModel(in)
	if err != nil {
		t.Fatal(err)
	}
	// Identity 1: f[x] = n_{x−}.
	for i, nd := range in {
		if tr.F(i) != nd.NMinus {
			t.Fatalf("F(%d) = %d, want %d", i, tr.F(i), nd.NMinus)
		}
	}
	// Identity 2: MemReq(x) = n_{x+}.
	for i, nd := range in {
		if got := tr.MemReq(i); got != nd.NPlus {
			t.Fatalf("MemReq(%d) = %d, want %d", i, got, nd.NPlus)
		}
	}
	// Error case: negative n_minus.
	if _, err := FromLiuModel([]LiuModelNode{{Parent: NoParent, NPlus: 1, NMinus: -1}}); err == nil {
		t.Fatal("negative NMinus accepted")
	}
}

func TestRandomTrees(t *testing.T) {
	for _, kind := range []AttachKind{AttachUniform, AttachPreferential, AttachChainy} {
		rng := rand.New(rand.NewSource(42))
		tr, err := Random(rng, RandomOptions{Nodes: 200, MaxF: 50, MaxN: 10, Attach: kind})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 200 {
			t.Fatalf("random tree has %d nodes", tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if tr.F(i) < 1 || tr.F(i) > 50 {
				t.Fatalf("f out of range: %d", tr.F(i))
			}
			if tr.N(i) < 0 || tr.N(i) > 10 {
				t.Fatalf("n out of range: %d", tr.N(i))
			}
		}
	}
	// Determinism.
	a, _ := Random(rand.New(rand.NewSource(7)), RandomOptions{Nodes: 64, MaxF: 9, MaxN: 3})
	b, _ := Random(rand.New(rand.NewSource(7)), RandomOptions{Nodes: 64, MaxF: 9, MaxN: 3})
	if !reflect.DeepEqual(a.ParentVector(), b.ParentVector()) || !reflect.DeepEqual(a.FVector(), b.FVector()) {
		t.Fatal("random generation is not deterministic for a fixed seed")
	}
	// Error cases.
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, RandomOptions{Nodes: 0, MaxF: 1}); err == nil {
		t.Fatal("zero-node tree accepted")
	}
	if _, err := Random(rng, RandomOptions{Nodes: 1, MaxF: 0}); err == nil {
		t.Fatal("MaxF=0 accepted")
	}
	if _, err := Random(rng, RandomOptions{Nodes: 1, MaxF: 1, MaxN: -1}); err == nil {
		t.Fatal("MaxN<0 accepted")
	}
}

func TestRandomizeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, err := Random(rng, RandomOptions{Nodes: 600, MaxF: 5, MaxN: 5})
	if err != nil {
		t.Fatal(err)
	}
	rw := RandomizeWeights(base, rng)
	if !reflect.DeepEqual(rw.ParentVector(), base.ParentVector()) {
		t.Fatal("RandomizeWeights changed the shape")
	}
	for i := 0; i < rw.Len(); i++ {
		if rw.F(i) < 1 || rw.F(i) > 600 {
			t.Fatalf("f out of range: %d", rw.F(i))
		}
		if rw.N(i) < 1 || rw.N(i) > 600/500+1 {
			t.Fatalf("n out of range: %d", rw.N(i))
		}
	}
}

func TestRoundTripIO(t *testing.T) {
	tr := sampleTree(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ParentVector(), tr.ParentVector()) ||
		!reflect.DeepEqual(back.FVector(), tr.FVector()) ||
		!reflect.DeepEqual(back.NVector(), tr.NVector()) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                          // no header
		"p 0\n",                     // bad count
		"p x\n",                     // bad count
		"p 1\np 1\n0 -1 1 0\n",      // duplicate header
		"0 -1 1 0\n",                // node before header
		"p 1\n0 -1 1\n",             // short line
		"p 1\n7 -1 1 0\n",           // id out of range
		"p 1\n0 -1 1 0\n0 -1 1 0\n", // duplicate after full? (dup id)
		"p 2\n0 -1 1 0\n",           // missing node
		"p 1\n0 z 1 0\n",            // bad parent
		"p 1\n0 -1 z 0\n",           // bad f
		"p 1\n0 -1 1 z\n",           // bad n
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("Read(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# a tree\n\np 2\n0 -1 3 1\n1 0 2 0\n"
	tr, err := Read(bytes.NewBufferString(ok))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.F(0) != 3 {
		t.Fatal("comment parse mismatch")
	}
}

// Property: Read(Write(t)) == t on random trees.
func TestQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	prop := func(seed int64, p uint8) bool {
		nodes := int(p%60) + 1
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, RandomOptions{Nodes: nodes, MaxF: 100, MaxN: 20})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.ParentVector(), tr.ParentVector()) &&
			reflect.DeepEqual(back.FVector(), tr.FVector()) &&
			reflect.DeepEqual(back.NVector(), tr.NVector())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a postorder is always a valid bottom-up order, and its reverse a
// valid top-down order.
func TestQuickOrderDuality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		nodes := int(p%100) + 1
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, RandomOptions{
			Nodes: nodes, MaxF: 30, MaxN: 10, Attach: AttachKind(kind % 3),
		})
		if err != nil {
			return false
		}
		po := tr.Postorder()
		if tr.IsBottomUpOrder(po) != nil {
			return false
		}
		if tr.IsTopDownOrder(ReverseOrder(po)) != nil {
			return false
		}
		td := tr.TopDown()
		return tr.IsTopDownOrder(td) == nil && tr.IsBottomUpOrder(ReverseOrder(td)) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax64(t *testing.T) {
	if min64(2, 3) != 2 || min64(3, 2) != 2 || max64(2, 3) != 3 || max64(3, 2) != 3 {
		t.Fatal("min64/max64 broken")
	}
}
