package tree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// treesEqual compares two trees field by field.
func treesEqual(a, b *Tree) bool {
	if a.Len() != b.Len() || a.Root() != b.Root() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Parent(i) != b.Parent(i) || a.F(i) != b.F(i) || a.N(i) != b.N(i) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nodes := 1 + rng.Intn(200)
		tr, err := Random(rng, RandomOptions{Nodes: nodes, MaxF: 1000, MaxN: 500, Attach: AttachKind(trial % 3)})
		if err != nil {
			t.Fatal(err)
		}
		data := tr.AppendBinary(nil)
		got, rest, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rest))
		}
		if !treesEqual(tr, got) {
			t.Fatalf("trial %d: binary round trip changed the tree", trial)
		}
	}
}

// Negative n values (model transforms) and a single-node tree survive the
// codec.
func TestBinaryRoundTripEdgeCases(t *testing.T) {
	for _, tr := range []*Tree{
		MustNew([]int{-1}, []int64{0}, []int64{0}),
		MustNew([]int{-1, 0, 0}, []int64{5, 3, 0}, []int64{-7, 2, -1}),
	} {
		got, rest, err := DecodeBinary(tr.AppendBinary(nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || !treesEqual(tr, got) {
			t.Fatal("edge-case round trip changed the tree")
		}
	}
}

// Concatenated binary documents decode one at a time, exactly like the
// textual multi-document stream.
func TestBinaryConcatenatedDocuments(t *testing.T) {
	a := MustNew([]int{-1, 0}, []int64{1, 2}, []int64{3, 4})
	b := MustNew([]int{1, -1}, []int64{9, 8}, []int64{7, 6})
	data := b.AppendBinary(a.AppendBinary(nil))
	first, rest, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	second, rest, err := DecodeBinary(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !treesEqual(a, first) || !treesEqual(b, second) {
		t.Fatal("concatenated documents did not round trip in order")
	}
}

func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	tr := MustNew([]int{-1, 0, 0}, []int64{5, 3, 0}, []int64{7, 2, 1})
	data := tr.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0x00}, data[1:]...),
		"bad version": append([]byte{BinaryMagic, 99}, data[2:]...),
		"truncated":   data[:len(data)-1],
		"huge count":  {BinaryMagic, BinaryVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, c := range cases {
		if _, _, err := DecodeBinary(c); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// FuzzTreeBinaryRoundTrip pins the binary codec against the textual one:
// any tree that decodes from fuzzed bytes must survive a binary round trip
// bit-identically, and must equal the tree the textual Write/Read round
// trip produces.
func FuzzTreeBinaryRoundTrip(f *testing.F) {
	seed := MustNew([]int{-1, 0, 0, 1}, []int64{4, 3, 2, 1}, []int64{1, -2, 3, 4})
	f.Add(seed.AppendBinary(nil))
	f.Add([]byte{BinaryMagic, BinaryVersion, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, _, err := DecodeBinary(data)
		if err != nil {
			return // corrupt input is allowed to fail, never to panic
		}
		again, rest, err := DecodeBinary(tr.AppendBinary(nil))
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(rest) != 0 || !treesEqual(tr, again) {
			t.Fatal("binary round trip changed the tree")
		}
		var sb strings.Builder
		if err := tr.Write(&sb); err != nil {
			t.Fatal(err)
		}
		text, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("textual round trip failed: %v", err)
		}
		if !treesEqual(text, again) {
			t.Fatal("binary and textual round trips disagree")
		}
		// The canonical encoding is deterministic.
		if !bytes.Equal(tr.AppendBinary(nil), again.AppendBinary(nil)) {
			t.Fatal("encoding is not deterministic")
		}
	})
}
