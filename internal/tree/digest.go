package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Digest is the 256-bit content hash of a tree instance. Two trees have the
// same digest exactly when they are the same instance: same node count, same
// parent vector, same F and N weights (up to SHA-256 collisions). The result
// cache and the evaluation-service wire protocol both key on it.
type Digest [sha256.Size]byte

// String renders the digest as lower-case hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses the hex form produced by Digest.String: exactly 64
// hex characters. It is how the evaluation service resolves a batch job
// that references an uploaded tree by digest instead of inlining it.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	if len(s) != hex.EncodedLen(len(d)) {
		return Digest{}, fmt.Errorf("tree: digest %q: want %d hex characters, got %d", s, hex.EncodedLen(len(d)), len(s))
	}
	if _, err := hex.Decode(d[:], []byte(s)); err != nil {
		return Digest{}, fmt.Errorf("tree: digest %q: %v", s, err)
	}
	return d, nil
}

// Digest returns the content hash of the canonical binary serialization of
// the tree: a version tag, the node count, then (parent, F, N) for every
// node in index order, all little-endian. The encoding is independent of
// platform, process and Go version, so digests are stable across machines —
// a cache entry or a wire message produced anywhere names the same instance
// everywhere. Node indices are part of the identity: traversal orders
// exchanged alongside a tree reference nodes by index, and index-sensitive
// solvers (natural-postorder) would otherwise alias distinct instances.
func (t *Tree) Digest() Digest {
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte("repro/tree/v1\n"))
	binary.LittleEndian.PutUint64(buf[:], uint64(t.Len()))
	h.Write(buf[:])
	for i := 0; i < t.Len(); i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(t.parent[i])))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(t.f[i]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(t.n[i]))
		h.Write(buf[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}
