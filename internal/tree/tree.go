// Package tree implements the tree-shaped workflow model of Jacquelin,
// Marchal, Robert and Uçar, "On optimal tree traversals for sparse matrix
// factorization" (IPDPS 2011).
//
// A Tree is a rooted tree whose nodes are tasks. Every node i carries an
// input file of size F(i) exchanged with its parent and an execution file of
// size N(i). In the out-tree (top-down) view, a node may run once its parent
// has run, and running it materializes one output file per child. In the
// dual in-tree (bottom-up, multifrontal) view, a node may run once all its
// children have run, consuming their files and producing its own. Section
// III-C of the paper shows both views are equivalent under traversal
// reversal; helpers in this package convert between them.
//
// Processing node i needs
//
//	MemReq(i) = F(i) + N(i) + Σ_{j ∈ Children(i)} F(j)
//
// units of main memory in addition to any other resident files.
//
// Trees serialize to the textual .tree wire form (Write/Read, one node per
// line; NewDecoder streams multi-document corpora), which is how they
// travel to remote evaluation servers, and Digest computes a canonical,
// platform-independent content hash that keys the content-addressed result
// caches of internal/schedule.
package tree

import (
	"errors"
	"fmt"
)

// NoParent marks the root's parent slot.
const NoParent = -1

// Tree is an immutable rooted tree workflow. Construct one with New; the
// zero value is not usable.
type Tree struct {
	parent    []int32
	childPtr  []int32 // CSR offsets into childList, len = p+1
	childList []int32
	f         []int64 // input (communication) file sizes
	n         []int64 // execution file sizes; may be negative for model transforms
	root      int32
}

// New builds a tree from a parent vector: parent[i] is the parent of node i,
// and exactly one node must have parent NoParent (-1). f[i] and n[i] are the
// input and execution file sizes of node i. New validates that the parent
// vector describes a single connected rooted tree.
func New(parent []int, f, n []int64) (*Tree, error) {
	p := len(parent)
	if p == 0 {
		return nil, errors.New("tree: empty parent vector")
	}
	if len(f) != p || len(n) != p {
		return nil, fmt.Errorf("tree: size vectors have length %d, %d; want %d", len(f), len(n), p)
	}
	t := &Tree{
		parent: make([]int32, p),
		f:      make([]int64, p),
		n:      make([]int64, p),
		root:   NoParent,
	}
	copy(t.f, f)
	copy(t.n, n)
	counts := make([]int32, p+1)
	for i, par := range parent {
		switch {
		case par == NoParent:
			if t.root != NoParent {
				return nil, fmt.Errorf("tree: nodes %d and %d are both roots", t.root, i)
			}
			t.root = int32(i)
		case par < 0 || par >= p:
			return nil, fmt.Errorf("tree: node %d has out-of-range parent %d", i, par)
		case par == i:
			return nil, fmt.Errorf("tree: node %d is its own parent", i)
		default:
			counts[par+1]++
		}
		t.parent[i] = int32(par)
	}
	if t.root == NoParent {
		return nil, errors.New("tree: no root (no node with parent -1)")
	}
	if f[t.root] < 0 {
		return nil, fmt.Errorf("tree: root input file size %d is negative", f[t.root])
	}
	for i := range f {
		if f[i] < 0 {
			return nil, fmt.Errorf("tree: node %d has negative input file size %d", i, f[i])
		}
	}
	// Build CSR children adjacency.
	t.childPtr = counts
	for i := 1; i <= p; i++ {
		t.childPtr[i] += t.childPtr[i-1]
	}
	t.childList = make([]int32, t.childPtr[p])
	next := make([]int32, p)
	copy(next, t.childPtr[:p])
	for i, par := range parent {
		if par != NoParent {
			t.childList[next[par]] = int32(i)
			next[par]++
		}
	}
	// Connectivity: every node must reach the root without cycles.
	// A DFS from the root must visit all p nodes.
	seen := 0
	stack := []int32{t.root}
	visited := make([]bool, p)
	visited[t.root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen++
		for _, c := range t.childrenRaw(int(v)) {
			if visited[c] {
				return nil, fmt.Errorf("tree: node %d visited twice (cycle)", c)
			}
			visited[c] = true
			stack = append(stack, c)
		}
	}
	if seen != p {
		return nil, fmt.Errorf("tree: only %d of %d nodes reachable from root (cycle or forest)", seen, p)
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and examples.
func MustNew(parent []int, f, n []int64) *Tree {
	t, err := New(parent, f, n)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of nodes p.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node index.
func (t *Tree) Root() int { return int(t.root) }

// Parent returns the parent of node i, or NoParent for the root.
func (t *Tree) Parent(i int) int { return int(t.parent[i]) }

// F returns the size of the input file of node i (the file exchanged with
// its parent).
func (t *Tree) F(i int) int64 { return t.f[i] }

// N returns the size of the execution file of node i. It may be negative on
// trees obtained by the model transformations of Section III-C.
func (t *Tree) N(i int) int64 { return t.n[i] }

func (t *Tree) childrenRaw(i int) []int32 {
	return t.childList[t.childPtr[i]:t.childPtr[i+1]]
}

// NumChildren returns the number of children of node i.
func (t *Tree) NumChildren(i int) int {
	return int(t.childPtr[i+1] - t.childPtr[i])
}

// Child returns the k-th child of node i.
func (t *Tree) Child(i, k int) int {
	return int(t.childList[int(t.childPtr[i])+k])
}

// Children appends the children of node i to dst and returns the result.
// Pass nil to allocate a fresh slice.
func (t *Tree) Children(i int, dst []int) []int {
	for _, c := range t.childrenRaw(i) {
		dst = append(dst, int(c))
	}
	return dst
}

// IsLeaf reports whether node i has no children.
func (t *Tree) IsLeaf(i int) bool { return t.childPtr[i] == t.childPtr[i+1] }

// ChildFileSum returns Σ_{j ∈ Children(i)} F(j).
func (t *Tree) ChildFileSum(i int) int64 {
	var s int64
	for _, c := range t.childrenRaw(i) {
		s += t.f[c]
	}
	return s
}

// MemReq returns the memory requirement of node i per Equation (1):
// F(i) + N(i) + Σ_{j ∈ Children(i)} F(j).
func (t *Tree) MemReq(i int) int64 {
	return t.f[i] + t.n[i] + t.ChildFileSum(i)
}

// MaxMemReq returns max_i MemReq(i), the trivial lower bound on the memory
// needed by any traversal.
func (t *Tree) MaxMemReq() int64 {
	var m int64
	for i := 0; i < t.Len(); i++ {
		if r := t.MemReq(i); r > m {
			m = r
		}
	}
	return m
}

// TotalF returns Σ_i F(i), an upper bound on any reasonable memory value and
// on the I/O volume of a single-write schedule.
func (t *Tree) TotalF() int64 {
	var s int64
	for _, v := range t.f {
		s += v
	}
	return s
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Depth() int {
	depth := make([]int32, t.Len())
	best := int32(0)
	for _, v := range t.TopDown() {
		if v != t.Root() {
			depth[v] = depth[t.parent[v]] + 1
			if depth[v] > best {
				best = depth[v]
			}
		}
	}
	return int(best)
}

// TopDown returns the nodes in a preorder (parents before children) using a
// depth-first sweep. The result is a valid out-tree traversal order when
// memory is unlimited.
func (t *Tree) TopDown() []int {
	out := make([]int, 0, t.Len())
	stack := []int32{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, int(v))
		kids := t.childrenRaw(int(v))
		for k := len(kids) - 1; k >= 0; k-- { // preserve child order in output
			stack = append(stack, kids[k])
		}
	}
	return out
}

// Postorder returns the nodes in depth-first postorder (children before
// parents, each subtree contiguous), following the stored child order.
func (t *Tree) Postorder() []int {
	out := make([]int, 0, t.Len())
	// Iterative DFS with an explicit "stage" to avoid recursion on deep chains.
	type frame struct {
		node int32
		next int32 // next child index to descend into
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{t.root, 0})
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		kids := t.childrenRaw(int(fr.node))
		if int(fr.next) < len(kids) {
			c := kids[fr.next]
			fr.next++
			stack = append(stack, frame{c, 0})
			continue
		}
		out = append(out, int(fr.node))
		stack = stack[:len(stack)-1]
	}
	return out
}

// SubtreeSizes returns, for each node, the number of nodes in its subtree
// (itself included).
func (t *Tree) SubtreeSizes() []int {
	sz := make([]int, t.Len())
	for _, v := range t.Postorder() {
		sz[v]++
		if v != t.Root() {
			sz[t.parent[v]] += sz[v]
		}
	}
	return sz
}

// Leaves returns all leaf nodes in increasing index order.
func (t *Tree) Leaves() []int {
	var out []int
	for i := 0; i < t.Len(); i++ {
		if t.IsLeaf(i) {
			out = append(out, i)
		}
	}
	return out
}

// ParentVector returns a copy of the parent vector (NoParent for the root).
func (t *Tree) ParentVector() []int {
	out := make([]int, t.Len())
	for i, p := range t.parent {
		out[i] = int(p)
	}
	return out
}

// FVector returns a copy of the input file sizes.
func (t *Tree) FVector() []int64 {
	out := make([]int64, t.Len())
	copy(out, t.f)
	return out
}

// NVector returns a copy of the execution file sizes.
func (t *Tree) NVector() []int64 {
	out := make([]int64, t.Len())
	copy(out, t.n)
	return out
}

// WithWeights returns a tree with the same shape but new file sizes.
func (t *Tree) WithWeights(f, n []int64) (*Tree, error) {
	return New(t.ParentVector(), f, n)
}

// ReverseOrder returns the reverse permutation of order: if order is a valid
// bottom-up (in-tree) traversal, the result is a valid top-down (out-tree)
// traversal of the same tree and vice versa (Section III-C of the paper).
func ReverseOrder(order []int) []int {
	out := make([]int, len(order))
	for i := range order {
		out[i] = order[len(order)-1-i]
	}
	return out
}

// IsTopDownOrder reports whether order is a permutation of the nodes that
// schedules every node after its parent (precedence feasibility only; memory
// is not checked).
func (t *Tree) IsTopDownOrder(order []int) error {
	if len(order) != t.Len() {
		return fmt.Errorf("tree: order has %d entries, want %d", len(order), t.Len())
	}
	pos := make([]int, t.Len())
	for i := range pos {
		pos[i] = -1
	}
	for step, v := range order {
		if v < 0 || v >= t.Len() {
			return fmt.Errorf("tree: order entry %d out of range", v)
		}
		if pos[v] != -1 {
			return fmt.Errorf("tree: node %d appears twice in order", v)
		}
		pos[v] = step
	}
	for i := 0; i < t.Len(); i++ {
		if i != t.Root() && pos[t.Parent(i)] > pos[i] {
			return fmt.Errorf("tree: node %d scheduled before its parent %d", i, t.Parent(i))
		}
	}
	return nil
}

// IsBottomUpOrder reports whether order schedules every node after all of
// its children (precedence feasibility in the in-tree view).
func (t *Tree) IsBottomUpOrder(order []int) error {
	return t.IsTopDownOrder(ReverseOrder(order))
}
