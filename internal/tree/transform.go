package tree

import "fmt"

// FromReplacementModel converts an instance of the pebble-game "model with
// replacement" (Section III-C, Figure 1) into the paper's model.
//
// In the replacement model a node i with input file f[i] needs
// max(f[i], Σ_{j∈Children(i)} f[j]) memory to run: the input file is
// replaced in place by the output files. The equivalent instance in the
// current model keeps the same file sizes and sets
//
//	n[i] = −min(f[i], Σ_{j∈Children(i)} f[j])
//
// so that MemReq(i) = f[i] + n[i] + Σ f[j] = max(f[i], Σ f[j]).
func FromReplacementModel(parent []int, f []int64) (*Tree, error) {
	shape, err := New(parent, f, make([]int64, len(f)))
	if err != nil {
		return nil, err
	}
	n := make([]int64, len(f))
	for i := range f {
		cs := shape.ChildFileSum(i)
		n[i] = -min64(f[i], cs)
	}
	return New(parent, f, n)
}

// LiuModelNode describes one original node x of Liu's 1987 bottom-up
// framework, in which x is expanded into x+ (during processing) and x−
// (after processing). NPlus is the cost n_{x+}: the number of factor
// nonzeros live while column x is processed (the memory peak of x). NMinus
// is n_{x−}: the nonzeros of the subtree rooted at x still required after x
// has been processed (the storage requirement of the subtree).
type LiuModelNode struct {
	Parent int
	NPlus  int64
	NMinus int64
}

// FromLiuModel converts an instance of Liu's x+/x− model (Section III-C,
// Figure 2) into the paper's model: each pair (x+, x−) is merged back into a
// single node x with input file f[x] = n_{x−} and execution cost
//
//	n[x] = n_{x+} − n_{x−} − Σ_{j ∈ Children(x)} n_{j−}
//
// so that MemReq(x) = n_{x+} and the retained file is n_{x−}.
func FromLiuModel(nodes []LiuModelNode) (*Tree, error) {
	p := len(nodes)
	parent := make([]int, p)
	f := make([]int64, p)
	for i, nd := range nodes {
		parent[i] = nd.Parent
		f[i] = nd.NMinus
		if nd.NMinus < 0 {
			return nil, fmt.Errorf("tree: node %d has negative n_minus %d", i, nd.NMinus)
		}
	}
	shape, err := New(parent, f, make([]int64, p))
	if err != nil {
		return nil, err
	}
	n := make([]int64, p)
	for i, nd := range nodes {
		var childMinus int64
		for k := 0; k < shape.NumChildren(i); k++ {
			childMinus += nodes[shape.Child(i, k)].NMinus
		}
		n[i] = nd.NPlus - nd.NMinus - childMinus
	}
	return New(parent, f, n)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
