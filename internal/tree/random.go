package tree

import (
	"fmt"
	"math/rand"
)

// RandomOptions controls random tree generation.
type RandomOptions struct {
	// Nodes is the number of nodes p (must be ≥ 1).
	Nodes int
	// MaxF is the inclusive upper bound on input file sizes (drawn uniformly
	// from [1, MaxF]).
	MaxF int64
	// MaxN is the inclusive upper bound on execution file sizes (drawn
	// uniformly from [0, MaxN]).
	MaxN int64
	// Attach selects the shape distribution. See AttachKind.
	Attach AttachKind
}

// AttachKind selects how random trees are grown.
type AttachKind int

const (
	// AttachUniform attaches node i to a uniformly random earlier node,
	// yielding "random recursive trees" (log-depth, moderate fan-out).
	AttachUniform AttachKind = iota
	// AttachPreferential attaches proportionally to 1+degree, yielding
	// skewed, high-fan-out trees.
	AttachPreferential
	// AttachChainy attaches to the most recent node with probability 1/2 and
	// uniformly otherwise, yielding deep, chain-like trees similar to
	// minimum-degree elimination trees.
	AttachChainy
)

// Random generates a random tree with the given options using rng. It is
// deterministic for a fixed seed.
func Random(rng *rand.Rand, opt RandomOptions) (*Tree, error) {
	if opt.Nodes < 1 {
		return nil, fmt.Errorf("tree: random tree needs ≥ 1 node, got %d", opt.Nodes)
	}
	if opt.MaxF < 1 {
		return nil, fmt.Errorf("tree: random tree needs MaxF ≥ 1, got %d", opt.MaxF)
	}
	if opt.MaxN < 0 {
		return nil, fmt.Errorf("tree: random tree needs MaxN ≥ 0, got %d", opt.MaxN)
	}
	p := opt.Nodes
	parent := make([]int, p)
	parent[0] = NoParent
	deg := make([]int, p) // used by preferential attachment: 1 + #children
	deg[0] = 1
	total := 1
	for i := 1; i < p; i++ {
		var par int
		switch opt.Attach {
		case AttachPreferential:
			r := rng.Intn(total)
			for par = 0; par < i; par++ {
				r -= deg[par]
				if r < 0 {
					break
				}
			}
		case AttachChainy:
			if rng.Intn(2) == 0 {
				par = i - 1
			} else {
				par = rng.Intn(i)
			}
		default:
			par = rng.Intn(i)
		}
		parent[i] = par
		deg[par]++
		deg[i] = 1
		total += 2
	}
	f := make([]int64, p)
	n := make([]int64, p)
	for i := 0; i < p; i++ {
		f[i] = 1 + rng.Int63n(opt.MaxF)
		if opt.MaxN > 0 {
			n[i] = rng.Int63n(opt.MaxN + 1)
		}
	}
	return New(parent, f, n)
}

// RandomizeWeights returns a tree with the same shape as t but weights drawn
// as in Section VI-E of the paper: execution files uniform in [1, N/500] and
// input files uniform in [1, N], where N is the number of nodes. When
// N/500 < 1 the execution-file bound is clamped to 1.
func RandomizeWeights(t *Tree, rng *rand.Rand) *Tree {
	p := t.Len()
	maxN := int64(p) / 500
	if maxN < 1 {
		maxN = 1
	}
	f := make([]int64, p)
	n := make([]int64, p)
	for i := 0; i < p; i++ {
		f[i] = 1 + rng.Int63n(int64(p))
		n[i] = 1 + rng.Int63n(maxN)
	}
	out, err := t.WithWeights(f, n)
	if err != nil {
		// Shape is unchanged and weights are positive, so this cannot fail.
		panic(err)
	}
	return out
}
