package tree

import (
	"strings"
	"testing"
)

func digestTree(t *testing.T, parent []int, f, n []int64) *Tree {
	t.Helper()
	tr, err := New(parent, f, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The digest must be a pure function of the instance content: stable across
// calls and across a serialization round-trip, different whenever any of
// the shape, F or N changes.
func TestDigest(t *testing.T) {
	base := digestTree(t, []int{-1, 0, 0, 1}, []int64{1, 2, 3, 4}, []int64{5, 6, 7, 8})
	d := base.Digest()
	if d != base.Digest() {
		t.Fatal("digest not deterministic across calls")
	}
	if len(d.String()) != 64 || strings.ToLower(d.String()) != d.String() {
		t.Fatalf("digest string %q is not 64 lower-case hex chars", d)
	}

	// Round-trip through the .tree wire form: same instance, same digest.
	var sb strings.Builder
	if err := base.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != d {
		t.Fatal("digest changed across a wire round-trip")
	}

	variants := map[string]*Tree{
		"shape":  digestTree(t, []int{-1, 0, 0, 2}, []int64{1, 2, 3, 4}, []int64{5, 6, 7, 8}),
		"f":      digestTree(t, []int{-1, 0, 0, 1}, []int64{1, 2, 3, 9}, []int64{5, 6, 7, 8}),
		"n":      digestTree(t, []int{-1, 0, 0, 1}, []int64{1, 2, 3, 4}, []int64{5, 6, 7, 9}),
		"n-sign": digestTree(t, []int{-1, 0, 0, 1}, []int64{1, 2, 3, 4}, []int64{5, 6, 7, -8}),
		"longer": digestTree(t, []int{-1, 0, 0, 1, 3}, []int64{1, 2, 3, 4, 0}, []int64{5, 6, 7, 8, 0}),
	}
	seen := map[Digest]string{d: "base"}
	for name, v := range variants {
		vd := v.Digest()
		if prev, dup := seen[vd]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[vd] = name
	}

	// Node indices are part of the identity: swapping the labels of the two
	// siblings (keeping the multiset of weights) must change the digest,
	// because index-sensitive consumers (replay orders, natural-postorder)
	// distinguish the two trees.
	relabeled := digestTree(t, []int{-1, 0, 0, 2}, []int64{1, 3, 2, 4}, []int64{5, 7, 6, 8})
	if relabeled.Digest() == d {
		t.Fatal("relabeled siblings share the digest")
	}
}

func TestParseDigestRoundTrip(t *testing.T) {
	d := digestTree(t, []int{-1, 0, 0}, []int64{1, 2, 3}, []int64{4, 5, 6}).Digest()
	got, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip: %v != %v", got, d)
	}
	for _, bad := range []string{"", "abc", d.String() + "00", strings.ToUpper(d.String()[:63]) + "g"} {
		if _, err := ParseDigest(bad); err == nil {
			t.Fatalf("ParseDigest(%q) accepted", bad)
		}
	}
}
